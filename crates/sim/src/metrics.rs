//! Run results: per-epoch reports and the aggregate metrics used by every
//! figure of the evaluation.

use fastcap_core::error::{Error, Result};
use fastcap_core::fairness::{self, FairnessReport};
use fastcap_core::units::{Secs, Watts};
use serde::{Deserialize, Serialize};

/// Everything measured over one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: u64,
    /// Core DVFS level in force for (most of) this epoch, per core.
    pub core_freq_idx: Vec<usize>,
    /// Memory DVFS level in force.
    pub mem_freq_idx: usize,
    /// Measured per-core power (dynamic + static).
    pub core_power: Vec<Watts>,
    /// Measured memory subsystem power.
    pub mem_power: Watts,
    /// Measured full-system power.
    pub total_power: Watts,
    /// Instructions retired per core.
    pub instructions: Vec<f64>,
    /// Whether the controller reported an emergency (infeasible budget).
    pub emergency: bool,
}

/// A complete simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Number of cores.
    pub n_cores: usize,
    /// Simulated slice per epoch (after time dilation).
    pub sim_epoch_length: Secs,
    /// The platform's peak power (normalization reference).
    pub peak_power: Watts,
    /// Per-epoch measurements.
    pub epochs: Vec<EpochReport>,
}

impl RunResult {
    /// Mean full-system power over epochs `skip..`.
    pub fn avg_power(&self, skip: usize) -> Watts {
        let es = &self.epochs[skip.min(self.epochs.len())..];
        if es.is_empty() {
            return Watts::ZERO;
        }
        Watts(es.iter().map(|e| e.total_power.get()).sum::<f64>() / es.len() as f64)
    }

    /// Largest single-epoch average power over epochs `skip..`.
    pub fn max_epoch_power(&self, skip: usize) -> Watts {
        self.epochs[skip.min(self.epochs.len())..]
            .iter()
            .map(|e| e.total_power)
            .fold(Watts::ZERO, Watts::max)
    }

    /// Full-system power per epoch, normalized to the peak (Fig. 3/5).
    pub fn power_trace(&self) -> Vec<f64> {
        self.epochs
            .iter()
            .map(|e| e.total_power / self.peak_power)
            .collect()
    }

    /// `(cores, memory)` power per epoch, normalized to the peak (Fig. 4).
    pub fn breakdown_trace(&self) -> Vec<(f64, f64)> {
        self.epochs
            .iter()
            .map(|e| {
                let cores: Watts = e.core_power.iter().copied().sum();
                (cores / self.peak_power, e.mem_power / self.peak_power)
            })
            .collect()
    }

    /// Core-frequency ladder index per epoch for one core (Fig. 7).
    pub fn core_freq_trace(&self, core: usize) -> Vec<usize> {
        self.epochs.iter().map(|e| e.core_freq_idx[core]).collect()
    }

    /// Memory-frequency ladder index per epoch (Fig. 8).
    pub fn mem_freq_trace(&self) -> Vec<usize> {
        self.epochs.iter().map(|e| e.mem_freq_idx).collect()
    }

    /// Mean instruction throughput per core (instructions per simulated
    /// second) over epochs `skip..`.
    pub fn throughput(&self, skip: usize) -> Vec<f64> {
        self.throughput_in(skip, self.epochs.len())
    }

    /// Mean instruction throughput per core over the epoch window
    /// `[start, end)` — the per-phase metric of the scenario artifacts
    /// (pre-surge vs in-surge vs recovered). Out-of-range bounds clamp.
    pub fn throughput_in(&self, start: usize, end: usize) -> Vec<f64> {
        let end = end.min(self.epochs.len());
        let start = start.min(end);
        let es = &self.epochs[start..end];
        let span = es.len() as f64 * self.sim_epoch_length.get();
        (0..self.n_cores)
            .map(|i| {
                if span > 0.0 {
                    es.iter().map(|e| e.instructions[i]).sum::<f64>() / span
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Per-core performance degradation versus an uncapped baseline run:
    /// `baseline_throughput / capped_throughput` (≥ 1 under capping; this is
    /// the normalized-CPI metric of Fig. 6 and friends).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidModel`] when shapes mismatch or a throughput
    /// is non-positive.
    pub fn degradation_vs(&self, baseline: &RunResult, skip: usize) -> Result<Vec<f64>> {
        if baseline.n_cores != self.n_cores {
            return Err(Error::InvalidModel {
                why: format!(
                    "baseline has {} cores, run has {}",
                    baseline.n_cores, self.n_cores
                ),
            });
        }
        let base = baseline.throughput(skip);
        let mine = self.throughput(skip);
        base.iter()
            .zip(&mine)
            .map(|(&b, &m)| {
                if !(b > 0.0 && m > 0.0) {
                    Err(Error::InvalidModel {
                        why: format!("non-positive throughput: baseline {b}, capped {m}"),
                    })
                } else {
                    Ok(b / m)
                }
            })
            .collect()
    }

    /// Fairness summary of the degradations against a baseline.
    ///
    /// # Errors
    ///
    /// Propagates [`RunResult::degradation_vs`] failures.
    pub fn fairness_vs(&self, baseline: &RunResult, skip: usize) -> Result<FairnessReport> {
        fairness::report(&self.degradation_vs(baseline, skip)?)
    }

    /// Largest per-epoch power-accounting residual
    /// `|total − Σ core − memory − other_static|` in watts — the
    /// counter-conservation probe of the invariant oracle. The simulator
    /// composes total power from exactly these three terms, so anything
    /// beyond float rounding means a measurement path dropped or
    /// double-counted a component.
    pub fn max_conservation_residual(&self, other_static: Watts) -> f64 {
        self.epochs
            .iter()
            .map(|e| {
                let cores: Watts = e.core_power.iter().copied().sum();
                (e.total_power.get() - cores.get() - e.mem_power.get() - other_static.get()).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Number of epochs whose average power exceeded `budget` by more than
    /// `tolerance` (fractional), over epochs `skip..`.
    pub fn violations(&self, budget: Watts, tolerance: f64, skip: usize) -> usize {
        self.epochs[skip.min(self.epochs.len())..]
            .iter()
            .filter(|e| e.total_power.get() > budget.get() * (1.0 + tolerance))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(powers: &[f64]) -> RunResult {
        RunResult {
            n_cores: 2,
            sim_epoch_length: Secs::from_micros(100.0),
            peak_power: Watts(100.0),
            epochs: powers
                .iter()
                .enumerate()
                .map(|(i, &p)| EpochReport {
                    epoch: i as u64,
                    core_freq_idx: vec![9, 5],
                    mem_freq_idx: 7,
                    core_power: vec![Watts(p * 0.3), Watts(p * 0.3)],
                    mem_power: Watts(p * 0.3),
                    total_power: Watts(p),
                    instructions: vec![1000.0, 500.0],
                    emergency: false,
                })
                .collect(),
        }
    }

    #[test]
    fn avg_and_max_power() {
        let r = run(&[50.0, 60.0, 70.0]);
        assert!((r.avg_power(0).get() - 60.0).abs() < 1e-9);
        assert!((r.avg_power(1).get() - 65.0).abs() < 1e-9);
        assert_eq!(r.max_epoch_power(0), Watts(70.0));
        assert_eq!(r.avg_power(10), Watts::ZERO);
    }

    #[test]
    fn traces() {
        let r = run(&[50.0, 60.0]);
        assert_eq!(r.power_trace(), vec![0.5, 0.6]);
        let bd = r.breakdown_trace();
        assert!((bd[0].0 - 0.3).abs() < 1e-9);
        assert!((bd[0].1 - 0.15).abs() < 1e-9);
        assert_eq!(r.core_freq_trace(1), vec![5, 5]);
        assert_eq!(r.mem_freq_trace(), vec![7, 7]);
    }

    #[test]
    fn throughput_and_degradation() {
        let base = run(&[100.0, 100.0]);
        let mut capped = run(&[60.0, 60.0]);
        for e in &mut capped.epochs {
            e.instructions = vec![800.0, 250.0]; // 1.25× and 2× slower
        }
        let d = capped.degradation_vs(&base, 0).unwrap();
        assert!((d[0] - 1.25).abs() < 1e-9);
        assert!((d[1] - 2.0).abs() < 1e-9);
        let f = capped.fairness_vs(&base, 0).unwrap();
        assert!((f.worst - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degradation_validates() {
        let base = run(&[100.0]);
        let mut other = run(&[100.0]);
        other.n_cores = 3;
        assert!(other.degradation_vs(&base, 0).is_err());
        let mut zero = run(&[100.0]);
        for e in &mut zero.epochs {
            e.instructions = vec![0.0, 0.0];
        }
        assert!(zero.degradation_vs(&base, 0).is_err());
    }

    #[test]
    fn windowed_throughput() {
        let mut r = run(&[100.0, 100.0, 100.0, 100.0]);
        r.epochs[2].instructions = vec![2000.0, 1000.0];
        r.epochs[3].instructions = vec![2000.0, 1000.0];
        let early = r.throughput_in(0, 2);
        let late = r.throughput_in(2, 4);
        assert!((late[0] / early[0] - 2.0).abs() < 1e-9);
        assert!((late[1] / early[1] - 2.0).abs() < 1e-9);
        // Full-window form agrees with `throughput`.
        assert_eq!(r.throughput_in(1, r.epochs.len()), r.throughput(1));
        // Degenerate windows clamp to zero throughput.
        assert!(r.throughput_in(9, 12).iter().all(|&t| t == 0.0));
    }

    #[test]
    fn conservation_residual_detects_unaccounted_power() {
        // The synthetic epochs split power 0.3/0.3/0.3, leaving 0.1·p
        // unaccounted when "other" is claimed to be zero.
        let r = run(&[50.0, 60.0]);
        assert!((r.max_conservation_residual(Watts(6.0)) - 1.0).abs() < 1e-9);
        let mut exact = run(&[50.0]);
        exact.epochs[0].total_power = Watts(50.0 * 0.9 + 4.0);
        assert!(exact.max_conservation_residual(Watts(4.0)) < 1e-12);
    }

    #[test]
    fn violation_counting() {
        let r = run(&[58.0, 61.0, 66.0, 59.0]);
        // Budget 60 W, 5% tolerance -> only 66 W counts.
        assert_eq!(r.violations(Watts(60.0), 0.05, 0), 1);
        // Zero tolerance -> 61 and 66.
        assert_eq!(r.violations(Watts(60.0), 0.0, 0), 2);
        assert_eq!(r.violations(Watts(60.0), 0.0, 3), 0);
    }
}
