//! Shared "ground-truth" power computation.
//!
//! Both simulation backends (the discrete-event [`crate::server::Server`]
//! and the analytic [`crate::analytic::AnalyticServer`]) measure power with
//! these formulas, so their results are directly comparable:
//!
//! * **core** — `P_dyn,max · V(f)²f/V(f_max)²f_max · activity + P_static`,
//!   with `activity = idle + (1-idle)·busy_fraction`;
//! * **memory** — DDR3 background (powerdown/standby mix) + row-buffer
//!   activity ([`crate::dram`]) + memory-controller `V²f` dynamic power +
//!   bus I/O power proportional to utilization × frequency.

use crate::config::SimConfig;
use fastcap_core::freq::VoltageCurve;
use fastcap_core::units::{Hz, Watts};

/// Measured core power at frequency `f` with the given busy fraction.
pub fn core_power(cfg: &SimConfig, f: Hz, busy_frac: f64) -> Watts {
    let act = cfg.idle_activity + (1.0 - cfg.idle_activity) * busy_frac.clamp(0.0, 1.0);
    Watts(cfg.core_dyn_max.get() * cfg.core_vcurve.dynamic_power_scale(f) * act) + cfg.core_static
}

/// Per-controller memory subsystem power.
///
/// `share` is this controller's fraction of the DIMM population (1.0 for a
/// single controller); `mc_vcurve` is the controller's voltage curve over
/// the memory ladder.
pub fn memory_power(
    cfg: &SimConfig,
    mc_vcurve: &VoltageCurve,
    f_mem: Hz,
    bank_util: f64,
    bus_util: f64,
    read_fraction: f64,
    share: f64,
) -> Watts {
    let f_scale = f_mem / cfg.mem_ladder.max();
    let mc_scale = mc_vcurve.dynamic_power_scale(f_mem);
    cfg.dram.background_power(bank_util) * share
        + cfg.dram.activity_power(bank_util, read_fraction) * share
        + Watts(cfg.mc_dyn_max.get() * mc_scale * share)
        + Watts(cfg.io_dyn_max.get() * bus_util.clamp(0.0, 1.0) * f_scale.max(0.0) * share)
}

/// The memory-controller voltage curve used by both backends.
///
/// # Errors
///
/// Propagates [`VoltageCurve::new`] validation (never fails for a valid
/// ladder).
pub fn mc_voltage_curve(cfg: &SimConfig) -> fastcap_core::error::Result<VoltageCurve> {
    VoltageCurve::new(cfg.mem_ladder.min(), cfg.mem_ladder.max(), 0.65, 1.2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::ispass(16).unwrap()
    }

    #[test]
    fn core_power_monotone_in_freq_and_activity() {
        let c = cfg();
        let lo = core_power(&c, Hz::from_ghz(2.2), 0.5);
        let hi = core_power(&c, Hz::from_ghz(4.0), 0.5);
        assert!(hi > lo);
        let idle = core_power(&c, Hz::from_ghz(4.0), 0.0);
        let busy = core_power(&c, Hz::from_ghz(4.0), 1.0);
        assert!(busy > idle);
        // Full-tilt power equals calibration max + static.
        assert!((busy.get() - (c.core_dyn_max + c.core_static).get()).abs() < 1e-9);
        // Stalled core still draws the idle-activity floor.
        assert!(idle.get() > c.core_static.get());
    }

    #[test]
    fn memory_power_components_add_up() {
        let c = cfg();
        let v = mc_voltage_curve(&c).unwrap();
        let idle = memory_power(&c, &v, Hz::from_mhz(200.0), 0.0, 0.0, 1.0, 1.0);
        let busy = memory_power(&c, &v, Hz::from_mhz(800.0), 0.3, 1.0, 0.7, 1.0);
        assert!(busy > idle);
        // Idle floor is the DRAM background + minimum MC power.
        assert!(idle.get() > c.dram.background_power(0.0).get());
        // Busy at max frequency lands near the ~30%-of-peak memory share.
        assert!(
            busy.get() > 25.0 && busy.get() < 55.0,
            "busy memory power = {busy}"
        );
    }

    #[test]
    fn controller_shares_sum_to_whole() {
        let c = cfg();
        let v = mc_voltage_curve(&c).unwrap();
        let whole = memory_power(&c, &v, Hz::from_mhz(600.0), 0.2, 0.5, 0.8, 1.0);
        let quarters: Watts = (0..4)
            .map(|_| memory_power(&c, &v, Hz::from_mhz(600.0), 0.2, 0.5, 0.8, 0.25))
            .sum();
        assert!((whole.get() - quarters.get()).abs() < 1e-9);
    }
}
