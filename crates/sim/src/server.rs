//! The simulated many-core server: epoch loop, DVFS actuation, counter
//! collection and power metering.
//!
//! [`Server`] owns the closed queuing network (cores ↔ banks ↔ bus) and
//! advances it epoch by epoch. Every epoch it:
//!
//! 1. hands the *previous* epoch's counters and measured powers to the
//!    capping policy (the paper's profiling phase, with the same one-epoch
//!    staleness its power samples have — see DESIGN.md §2),
//! 2. applies the returned [`DvfsDecision`] (cores stall ~10 µs on a
//!    frequency change; the whole memory subsystem freezes ~20 µs for
//!    PLL/DLL resync — Sec. III-C),
//! 3. simulates the epoch and measures per-component power with the
//!    activity/voltage/current models of [`crate::config`] and
//!    [`crate::dram`].
//!
//! The policy is any `FnMut(&EpochObservation) -> Option<DvfsDecision>`;
//! returning `None` keeps the current frequencies (used for uncapped
//! baseline runs).

use crate::config::SimConfig;
use crate::core_model::CoreSim;
use crate::engine::{to_ps, Event, EventQueue, Ps, PS_PER_SEC};
use crate::lanes::LaneSet;
use crate::memory::{MemController, Request};
use crate::metrics::{EpochReport, RunResult};
use fastcap_core::capper::DvfsDecision;
use fastcap_core::counters::{CoreSample, EpochObservation, MemorySample};
use fastcap_core::error::{Error, Result};
use fastcap_core::freq::VoltageCurve;
use fastcap_core::units::{Secs, Watts};
use fastcap_workloads::{AppInstance, PhaseSpec, WorkloadSpec};

/// A scheduled mid-run mutation of the simulated platform, injected into
/// the DES event stream by [`Server::schedule_control`] (the scenario
/// engine's server-side actions). Each action targets one core; scenario
/// events naming several cores expand to one action per core.
///
/// Controls fire in the timing wheel exactly like simulation events —
/// `(time, FIFO-seq)` ordered — so a scenario perturbs the simulation
/// deterministically and identically at any `--jobs` count.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlAction {
    /// Hotplug: bring a core online (`true`) or take it offline (`false`).
    /// Offline cores stop issuing work once their in-flight requests drain
    /// and are power-gated (zero measured power).
    SetOnline {
        /// Core index.
        core: usize,
        /// Desired state.
        online: bool,
    },
    /// Set the core's workload-intensity multiplier (1.0 = nominal). A
    /// flash crowd is a large factor over a window of epochs.
    SetIntensity {
        /// Core index.
        core: usize,
        /// Absolute multiplier applied over the phase model.
        factor: f64,
    },
    /// Install (or clear) a load-envelope overlay layered over the
    /// application's own phase model — e.g. a diurnal sinusoid.
    SetOverlay {
        /// Core index.
        core: usize,
        /// The overlay; `None` removes any installed overlay.
        phase: Option<PhaseSpec>,
    },
    /// Workload churn: the application on `core` departs and `app` arrives
    /// in its place. In-flight requests of the departing application drain
    /// normally.
    SwapApp {
        /// Core index.
        core: usize,
        /// The arriving application.
        app: Box<AppInstance>,
    },
}

impl ControlAction {
    /// The core this action targets.
    pub fn core(&self) -> usize {
        match *self {
            ControlAction::SetOnline { core, .. }
            | ControlAction::SetIntensity { core, .. }
            | ControlAction::SetOverlay { core, .. }
            | ControlAction::SwapApp { core, .. } => core,
        }
    }
}

/// The simulated server.
#[derive(Debug)]
pub struct Server {
    cfg: SimConfig,
    /// Per-core draw lanes (determinism contract v2, DESIGN.md §11): one
    /// private RNG stream partition per core plus a memory/meter lane,
    /// prefilled in parallel at every epoch barrier.
    lanes: LaneSet,
    queue: EventQueue,
    now: Ps,
    cores: Vec<CoreSim>,
    ctrls: Vec<MemController>,
    core_freq_idx: Vec<usize>,
    mem_freq_idx: usize,
    bus_transfer: Ps,
    l2_ps: Ps,
    // Hot-path tables, precomputed once at construction so the per-event
    // and per-decision paths never re-derive them from `Secs` floats:
    /// Bank service time for a row hit (`tCL`).
    service_hit: Ps,
    /// Bank service time for a row miss.
    service_miss: Ps,
    /// Bus transfer time per memory frequency index.
    bus_tbl: Vec<Ps>,
    /// Dilated core DVFS transition stall.
    core_stall: Ps,
    /// Dilated memory DVFS transition freeze.
    mem_freeze: Ps,
    mc_vcurve: VoltageCurve,
    epoch_index: u64,
    /// Reused observation buffer, refilled in place every epoch (the
    /// `access_weights` rows are constant and written exactly once).
    obs: EpochObservation,
    /// Whether `obs` holds a completed epoch.
    obs_ready: bool,
    /// Scheduled scenario mutations; `Event::Control { slot }` indexes
    /// this table. Empty for plain (non-scenario) runs.
    controls: Vec<ControlAction>,
    /// Per-core count of attributed stochastic sampling events (initial
    /// jitter, think sampling, burst issue, meter sampling) — the
    /// invariant-oracle probe behind "offline cores draw no RNG": a
    /// hot-unplugged core's count must freeze until it comes back online.
    rng_draws: Vec<u64>,
}

impl Server {
    /// Builds a server for an explicit list of per-core applications.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for invalid configurations or an
    /// application count that does not match `n_cores`.
    pub fn new(cfg: SimConfig, apps: Vec<AppInstance>, seed: u64) -> Result<Self> {
        cfg.validate()?;
        if apps.len() != cfg.n_cores {
            return Err(Error::InvalidConfig {
                what: "apps",
                why: format!("{} applications for {} cores", apps.len(), cfg.n_cores),
            });
        }
        for a in &apps {
            a.profile
                .check()
                .map_err(|why| Error::InvalidConfig { what: "apps", why })?;
        }
        let weights = cfg.interleaving.weights(cfg.n_controllers);
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cum.push(acc);
        }
        let mc_vcurve = crate::power_model::mc_voltage_curve(&cfg)?;
        let max_core = cfg.core_ladder.len() - 1;
        let max_mem = cfg.mem_ladder.len() - 1;
        let bus_tbl: Vec<Ps> = (0..cfg.mem_ladder.len())
            .map(|i| to_ps(cfg.bus_transfer_time(i)))
            .collect();
        let dilate = |t: Secs| to_ps(Secs(t.get() / cfg.time_dilation));
        let obs = EpochObservation {
            cores: Vec::with_capacity(cfg.n_cores),
            memory: MemorySample {
                bus_freq: cfg.mem_ladder.at(max_mem),
                bank_queue: 1.0,
                bus_queue: 1.0,
                bank_service_time: cfg.dram.t_cl,
                power: Watts::ZERO,
            },
            controllers: Vec::with_capacity(cfg.n_controllers),
            access_weights: if cfg.n_controllers > 1 {
                vec![weights.clone(); cfg.n_cores]
            } else {
                Vec::new()
            },
            total_power: Watts::ZERO,
        };
        let l2_ps = to_ps(cfg.l2_time);
        let service_hit = to_ps(cfg.dram.bank_service_time(true));
        // Conservative lookahead (contract v2): a core cannot consume more
        // than one think sample per minimum in-flight round trip (1 ps
        // think + L2 + row-hit service + fastest bus transfer), so the
        // per-epoch prefill target is capped at span / that bound.
        let span = to_ps(cfg.sim_epoch_length());
        let min_cycle = 1 + l2_ps + service_hit + bus_tbl[max_mem];
        let think_cap = (span / min_cycle.max(1)) as usize + 64;
        let lanes = LaneSet::new(
            seed,
            cfg.n_cores,
            cum,
            cfg.banks_per_controller,
            think_cap,
            cfg.lanes,
        );
        let mut server = Self {
            l2_ps,
            bus_transfer: bus_tbl[max_mem],
            service_hit,
            service_miss: to_ps(cfg.dram.bank_service_time(false)),
            bus_tbl,
            core_stall: dilate(cfg.core_transition),
            mem_freeze: dilate(cfg.mem_transition),
            ctrls: (0..cfg.n_controllers)
                .map(|i| MemController::new(i, cfg.banks_per_controller))
                .collect(),
            cores: apps.into_iter().map(CoreSim::new).collect(),
            core_freq_idx: vec![max_core; cfg.n_cores],
            mem_freq_idx: max_mem,
            lanes,
            queue: EventQueue::new(),
            now: 0,
            mc_vcurve,
            epoch_index: 0,
            obs,
            obs_ready: false,
            controls: Vec::new(),
            rng_draws: vec![0; cfg.n_cores],
            cfg,
        };
        server.refresh_cores();
        // Stagger initial activity so cores do not issue in lockstep; each
        // core's jitter comes from its own lane's one-off jitter stream.
        for core in 0..server.cores.len() {
            let jitter = server.lanes.jitter(core, server.l2_ps * 4 + 1000);
            server.rng_draws[core] += 1;
            server.schedule_core(core, jitter);
        }
        Ok(server)
    }

    /// Convenience constructor: instantiate a Table III workload onto the
    /// configured core count.
    ///
    /// # Errors
    ///
    /// Propagates configuration and instantiation failures.
    pub fn for_workload(cfg: SimConfig, workload: &WorkloadSpec, seed: u64) -> Result<Self> {
        let apps = workload
            .instantiate(cfg.n_cores)
            .map_err(|why| Error::InvalidConfig {
                what: "workload",
                why,
            })?;
        Self::new(cfg, apps, seed)
    }

    /// The configuration in force.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Epochs simulated so far.
    pub fn epochs_run(&self) -> u64 {
        self.epoch_index
    }

    /// Total events scheduled since construction — the denominator for
    /// per-event cost in the `sim_engine` bench and DESIGN.md §6.
    pub fn events_scheduled(&self) -> u64 {
        self.queue.scheduled()
    }

    /// Per-core counts of attributed stochastic sampling events (initial
    /// jitter, think sampling, burst issue, meter sampling). An offline
    /// core's count freezes — the simulator draws nothing on its behalf —
    /// which is the RNG half of the invariant oracle's "offline cores
    /// draw no power/RNG" check.
    pub fn rng_draws(&self) -> &[u64] {
        &self.rng_draws
    }

    /// Cumulative draw records consumed from `core`'s lane streams
    /// (contract v2's per-lane counterpart of [`Server::rng_draws`]): an
    /// offline core's lane freezes — no think, access, or meter records
    /// are taken on its behalf until it comes back online.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn lane_draws(&self, core: usize) -> u64 {
        self.lanes.lane_draws(core)
    }

    /// Switches draw generation to the serial byte-exact oracle: every
    /// record is generated at its consumption site, one at a time, with no
    /// epoch prefill, no lane pool, and no `lane_sync`/`barrier_wait`
    /// accounting. Artifact bytes are identical to the lane engine's by
    /// contract v2 (proptested in `tests/proptests.rs`); the oracle exists
    /// to verify exactly that, the way `HeapQueue` verifies the timing
    /// wheel.
    pub fn use_serial_oracle(&mut self) {
        self.lanes.use_serial_oracle();
    }

    /// Physical lane-pool width in force (`SimConfig::lanes` capped to the
    /// core count); 1 after [`Server::use_serial_oracle`].
    pub fn lane_threads(&self) -> usize {
        if self.lanes.is_oracle() {
            1
        } else {
            self.lanes.threads()
        }
    }

    /// Total events consumed from the queue since construction — the
    /// `event_pop` term of the deterministic cost model.
    pub fn events_popped(&self) -> u64 {
        self.queue.popped()
    }

    /// Deterministic operation counts attributable to this server's
    /// discrete-event machinery: queue pushes/pops, attributed RNG draws,
    /// and the lane engine's logical sync ops (stream refills and epoch
    /// barriers — counted identically at any physical lane count, zero
    /// under the serial oracle). Counts are cumulative since construction
    /// and identical for either event-queue implementation.
    pub fn cost(&self) -> fastcap_core::cost::CostCounter {
        fastcap_core::cost::CostCounter {
            event_pushes: self.events_scheduled(),
            event_pops: self.events_popped(),
            rng_draws: self.rng_draws.iter().sum(),
            lane_syncs: self.lanes.lane_syncs(),
            barrier_waits: self.lanes.barrier_waits(),
            ..Default::default()
        }
    }

    /// Whether a core is currently online (scenario hotplug state).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_active(&self, core: usize) -> bool {
        self.cores[core].active
    }

    /// Schedules a scenario mutation to fire at the **start** of epoch
    /// `at_epoch`, injected into the timing wheel as a regular event: it
    /// is `(time, FIFO-seq)`-ordered against simulation events, fires
    /// inside that epoch's event loop (after the epoch's DVFS decision is
    /// applied), and therefore perturbs the simulation identically at any
    /// `--jobs` count. A server with no scheduled controls behaves — byte
    /// for byte — like one built before this API existed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for an out-of-range core, an epoch
    /// that already started, or too many scheduled controls.
    pub fn schedule_control(&mut self, at_epoch: u64, action: ControlAction) -> Result<()> {
        if action.core() >= self.cfg.n_cores {
            return Err(Error::InvalidConfig {
                what: "control",
                why: format!(
                    "core {} out of range for {} cores",
                    action.core(),
                    self.cfg.n_cores
                ),
            });
        }
        if at_epoch < self.epoch_index {
            return Err(Error::InvalidConfig {
                what: "control",
                why: format!(
                    "epoch {at_epoch} already simulated (at epoch {})",
                    self.epoch_index
                ),
            });
        }
        let slot = self.controls.len();
        if slot >= 1 << 22 {
            return Err(Error::InvalidConfig {
                what: "control",
                why: "at most 2^22 controls can be scheduled".into(),
            });
        }
        let span = to_ps(self.cfg.sim_epoch_length());
        self.controls.push(action);
        self.queue.push(at_epoch * span, Event::Control { slot });
        Ok(())
    }

    /// The observation a policy would receive right now (from the last
    /// completed epoch), if any epoch has completed.
    ///
    /// This clones the internal buffer; [`Server::run`] hands the policy a
    /// reference instead, so the epoch loop itself never copies samples.
    pub fn observation(&self) -> Option<EpochObservation> {
        self.obs_ready.then(|| self.obs.clone())
    }

    /// Runs `epochs` epochs under `policy` and returns the result. Epoch 0
    /// is always a warm-up at the current (initially maximum) frequencies.
    pub fn run<P>(&mut self, epochs: usize, mut policy: P) -> RunResult
    where
        P: FnMut(&EpochObservation) -> Option<DvfsDecision>,
    {
        let mut reports = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let decision = if self.obs_ready {
                policy(&self.obs)
            } else {
                None
            };
            reports.push(self.run_epoch(decision.as_ref()));
        }
        RunResult {
            n_cores: self.cfg.n_cores,
            sim_epoch_length: self.cfg.sim_epoch_length(),
            peak_power: self.cfg.peak_power,
            epochs: reports,
        }
    }

    /// Runs one epoch, optionally applying a DVFS decision at its start.
    pub fn run_epoch(&mut self, decision: Option<&DvfsDecision>) -> EpochReport {
        let span = to_ps(self.cfg.sim_epoch_length());
        let start = self.now;
        let end = start + span;
        let mut emergency = false;

        if let Some(d) = decision {
            emergency = d.emergency;
            self.apply_decision(d);
        }
        self.refresh_cores();
        for c in &mut self.cores {
            c.stats.reset();
        }
        for ctl in &mut self.ctrls {
            ctl.counters.reset();
            ctl.activity.reset();
        }
        // Epoch boundary = hard barrier: refill every lane's draw streams
        // (in parallel across the lane pool) before the event loop runs.
        self.lanes.epoch_barrier(self.cfg.meter_noise > 0.0);

        self.advance_until(end);

        let report = self.measure(start, span, emergency);
        self.epoch_index += 1;
        report
    }

    // ---- internals -----------------------------------------------------

    fn apply_decision(&mut self, d: &DvfsDecision) {
        for (i, &idx) in d.core_freqs.iter().enumerate().take(self.cfg.n_cores) {
            let idx = idx.min(self.cfg.core_ladder.len() - 1);
            if idx != self.core_freq_idx[i] {
                self.core_freq_idx[i] = idx;
                self.cores[i].stall_until = self.now + self.core_stall;
            }
        }
        let mem_idx = d.mem_freq.min(self.cfg.mem_ladder.len() - 1);
        if mem_idx != self.mem_freq_idx {
            self.mem_freq_idx = mem_idx;
            self.bus_transfer = self.bus_tbl[mem_idx];
            let freeze = self.now + self.mem_freeze;
            for ctl in &mut self.ctrls {
                ctl.frozen_until = freeze;
            }
        }
    }

    /// The phase-model clock at the current simulation time: phase models
    /// are calibrated in units of the paper's 5 ms quantum, anchored to
    /// (undilated) wall time so studies that change the epoch length
    /// (Sec. IV-B: 10 ms, 20 ms) see the same application behaviour per
    /// unit time.
    fn phase_epoch(&self) -> f64 {
        let wall = self.now as f64 / PS_PER_SEC * self.cfg.time_dilation;
        wall / 5.0e-3
    }

    fn refresh_cores(&mut self) {
        let epoch = self.phase_epoch();
        for (i, core) in self.cores.iter_mut().enumerate() {
            let f = self.cfg.core_ladder.at(self.core_freq_idx[i]);
            core.refresh(epoch, self.cfg.core_mode, f);
        }
    }

    fn advance_until(&mut self, end: Ps) {
        while let Some((t, ev)) = self.queue.pop_if_before(end) {
            self.now = t;
            match ev {
                Event::CoreReady { core } => self.on_core_ready(core),
                Event::BankDone { ctrl, bank } => {
                    let sb = self.bus_transfer;
                    self.ctrls[ctrl].on_bank_done(bank, t, sb, true, &mut self.queue);
                }
                Event::BusDone { ctrl } => {
                    let sb = self.bus_transfer;
                    let req = self.ctrls[ctrl].on_bus_done(t, sb, &mut self.queue);
                    if let Some(core) = req.owner {
                        self.cores[core].outstanding -= 1;
                        if self.cores[core].outstanding == 0 {
                            self.schedule_core(core, t);
                        }
                    }
                }
                Event::Control { slot } => self.apply_control(slot),
            }
        }
        self.now = end;
    }

    /// Applies one scheduled scenario mutation at its event time.
    fn apply_control(&mut self, slot: usize) {
        let action = self.controls[slot].clone();
        match action {
            ControlAction::SetOnline { core, online } => {
                let was = self.cores[core].active;
                self.cores[core].active = online;
                if online && !was && self.cores[core].chain_dead {
                    // Fresh kick: the chain died while offline. Uses the
                    // same think-sampling path as the initial schedule.
                    self.cores[core].chain_dead = false;
                    let now = self.now;
                    self.schedule_core(core, now);
                }
            }
            ControlAction::SetIntensity { core, factor } => {
                self.cores[core].intensity_scale = factor;
                self.refresh_core(core);
            }
            ControlAction::SetOverlay { core, phase } => {
                self.cores[core].overlay = phase;
                self.refresh_core(core);
            }
            ControlAction::SwapApp { core, app } => {
                // Only the application changes: outstanding counters and
                // the chain state stay, so in-flight requests drain safely.
                self.cores[core].app = *app;
                self.refresh_core(core);
            }
        }
    }

    /// Re-derives one core's epoch-effective behaviour at the current
    /// simulation time (mid-epoch variant of [`Server::refresh_cores`]).
    fn refresh_core(&mut self, core: usize) {
        let epoch = self.phase_epoch();
        let f = self.cfg.core_ladder.at(self.core_freq_idx[core]);
        self.cores[core].refresh(epoch, self.cfg.core_mode, f);
    }

    fn schedule_core(&mut self, core: usize, now: Ps) {
        if !self.cores[core].active {
            // Offline: the chain dies here (no reschedule, no RNG draw);
            // coming back online re-kicks it.
            self.cores[core].chain_dead = true;
            return;
        }
        let mean = self.cores[core].think_mean;
        self.rng_draws[core] += 1;
        // Exponential think time: the lane record carries the unit-mean
        // `-ln(u)` factor; scaling by the mean at consumption time keeps
        // the record valid across mid-epoch intensity/app changes.
        let z = (mean * self.lanes.next_think(core)).round().max(1.0) as Ps;
        let c = &mut self.cores[core];
        c.pending_think = z;
        let start = now.max(c.stall_until);
        self.queue
            .push(start + z + self.l2_ps, Event::CoreReady { core });
    }

    fn on_core_ready(&mut self, core: usize) {
        if !self.cores[core].active {
            // The interval completed while the core was hot-unplugged: the
            // work is discarded, nothing is credited, the chain dies.
            self.cores[core].chain_dead = true;
            return;
        }
        self.cores[core].credit_interval();
        self.rng_draws[core] += 1;
        let burst = self.cores[core].burst;
        let row_hit_p = self.cores[core].row_hit_p;
        let wb_p = self.cores[core].wb_prob;
        let now = self.now;
        self.cores[core].outstanding = burst;
        for _ in 0..burst {
            // One fixed-size lane record per burst slot; the probability
            // thresholds are applied here, at consumption, so the stream
            // stays valid across mid-epoch wb/row-hit parameter changes.
            let d = self.lanes.next_access(core);
            let service = if d.hit_u < row_hit_p {
                self.service_hit
            } else {
                self.service_miss
            };
            self.ctrls[d.ctrl as usize].enqueue(
                d.bank as usize,
                Request {
                    owner: Some(core),
                    service,
                },
                now,
                true,
                &mut self.queue,
            );
            // Background writeback, off the critical path.
            if d.wb_u < wb_p {
                let wb_service = if d.wb_hit_u < row_hit_p {
                    self.service_hit
                } else {
                    self.service_miss
                };
                self.ctrls[d.wb_ctrl as usize].enqueue(
                    d.wb_bank as usize,
                    Request {
                        owner: None,
                        service: wb_service,
                    },
                    now,
                    true,
                    &mut self.queue,
                );
            }
        }
    }

    /// Applies one lane-drawn approximately-normal meter sample `g` to a
    /// true power reading.
    fn noisy(noise: f64, g: f64, w: Watts) -> Watts {
        Watts((w.get() * (1.0 + noise * g)).max(0.0))
    }

    fn measure(&mut self, _start: Ps, span: Ps, emergency: bool) -> EpochReport {
        // Per-core power: dynamic (V²f × activity) + static. The counter
        // samples land directly in the reused observation buffer — no
        // intermediate snapshot, no per-epoch clone.
        let mut core_power = Vec::with_capacity(self.cfg.n_cores);
        let mut instructions = Vec::with_capacity(self.cfg.n_cores);
        self.obs.cores.clear();
        for i in 0..self.cfg.n_cores {
            let f = self.cfg.core_ladder.at(self.core_freq_idx[i]);
            let stats = self.cores[i].stats;
            let busy_frac = (stats.busy / span as f64).min(1.0);
            let p = if self.cores[i].active {
                let p_true = crate::power_model::core_power(&self.cfg, f, busy_frac);
                if self.cfg.meter_noise > 0.0 {
                    self.rng_draws[i] += 1;
                    let g = self.lanes.next_meter(i);
                    Self::noisy(self.cfg.meter_noise, g, p_true)
                } else {
                    p_true
                }
            } else {
                // Hot-unplugged cores are power-gated: no dynamic, no
                // static, no meter sample (and no RNG draw).
                Watts::ZERO
            };
            core_power.push(p);
            instructions.push(stats.instructions);

            // Counter sample for the next observation. A core that finished
            // no interval this epoch (possible for extremely CPU-bound apps
            // in short dilated epochs) synthesizes nominal counters.
            let (tpi, tic, tlm) = if stats.misses > 0 && stats.instructions > 0.0 {
                (
                    Secs(stats.busy / stats.instructions / PS_PER_SEC),
                    stats.instructions as u64,
                    stats.misses,
                )
            } else {
                let c = &self.cores[i];
                (
                    Secs(c.app.profile.base_cpi / f.get()),
                    c.instr_per_interval.max(1.0) as u64,
                    c.burst as u64,
                )
            };
            self.obs.cores.push(CoreSample {
                freq: f,
                busy_time_per_instruction: tpi,
                instructions: tic,
                last_level_misses: tlm,
                power: p,
            });
        }

        // Memory power: DRAM background + activity + controller V²f + bus IO.
        let f_mem = self.cfg.mem_ladder.at(self.mem_freq_idx);
        let fallback_service = self.service_hit; // row-hit `tCL`

        let mut mem_power_total = Watts::ZERO;
        let multi = self.cfg.n_controllers > 1;
        self.obs.controllers.clear();
        let mut agg = crate::memory::MemCounters::default();
        for ctl in &self.ctrls {
            let bank_util = (ctl.activity.bank_busy
                / (span as f64 * self.cfg.banks_per_controller as f64))
                .min(1.0);
            let bus_util = (ctl.activity.bus_busy / span as f64).min(1.0);
            let share = 1.0 / self.cfg.n_controllers as f64;
            // Each controller covers `share` of the DIMM population; its
            // banks' utilization drives that share's background/activity.
            let p = crate::power_model::memory_power(
                &self.cfg,
                &self.mc_vcurve,
                f_mem,
                bank_util,
                bus_util,
                ctl.activity.read_fraction(),
                share,
            );
            mem_power_total += p;
            if multi {
                self.obs.controllers.push(MemorySample {
                    bus_freq: f_mem,
                    bank_queue: ctl.counters.mean_q(),
                    bus_queue: ctl.counters.mean_u(),
                    bank_service_time: Secs(
                        ctl.counters.mean_service_ps(fallback_service) / PS_PER_SEC,
                    ),
                    power: p,
                });
            }
            agg.q_sum += ctl.counters.q_sum;
            agg.q_n += ctl.counters.q_n;
            agg.u_sum += ctl.counters.u_sum;
            agg.u_n += ctl.counters.u_n;
            agg.service_sum += ctl.counters.service_sum;
            agg.service_n += ctl.counters.service_n;
        }
        // The memory subsystem meters from its own lane (index `n_cores`).
        let mem_power = if self.cfg.meter_noise > 0.0 {
            let g = self.lanes.next_mem_meter();
            Self::noisy(self.cfg.meter_noise, g, mem_power_total)
        } else {
            mem_power_total
        };
        self.obs.memory = MemorySample {
            bus_freq: f_mem,
            bank_queue: agg.mean_q(),
            bus_queue: agg.mean_u(),
            bank_service_time: Secs(agg.mean_service_ps(fallback_service) / PS_PER_SEC),
            power: mem_power,
        };

        let cores_total: Watts = core_power.iter().copied().sum();
        let total = cores_total + mem_power + self.cfg.other_power;
        self.obs.total_power = total;
        self.obs_ready = true;

        EpochReport {
            epoch: self.epoch_index,
            core_freq_idx: self.core_freq_idx.clone(),
            mem_freq_idx: self.mem_freq_idx,
            core_power,
            mem_power,
            total_power: total,
            instructions,
            emergency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastcap_workloads::mixes;

    fn quick_cfg(n: usize) -> SimConfig {
        SimConfig::ispass(n)
            .unwrap()
            .with_time_dilation(100.0)
            .with_meter_noise(0.0)
    }

    fn server(mix: &str, n: usize, seed: u64) -> Server {
        Server::for_workload(quick_cfg(n), &mixes::by_name(mix).unwrap(), seed).unwrap()
    }

    #[test]
    fn construction_validates() {
        let cfg = quick_cfg(16);
        let w = mixes::by_name("MIX1").unwrap();
        assert!(Server::for_workload(cfg.clone(), &w, 1).is_ok());
        // Wrong app count.
        let apps = w.instantiate(16).unwrap();
        let mut cfg4 = quick_cfg(4);
        cfg4.n_cores = 4;
        assert!(Server::new(cfg4, apps, 1).is_err());
    }

    #[test]
    fn uncapped_run_produces_sane_epochs() {
        let mut s = server("MEM1", 16, 42);
        let r = s.run(10, |_| None);
        assert_eq!(r.epochs.len(), 10);
        for e in &r.epochs {
            // Everything at max frequency.
            assert!(e.core_freq_idx.iter().all(|&i| i == 9));
            assert_eq!(e.mem_freq_idx, 9);
            assert!(e.total_power.get() > 30.0, "power {e:?}");
            assert!(e.total_power.get() < 130.0);
            // Memory-bound cores retire instructions.
            assert!(e.instructions.iter().all(|&i| i > 0.0));
        }
    }

    #[test]
    fn peak_power_is_near_calibration_target() {
        // ILP at max frequencies should approach the 120 W peak target for
        // 16 cores; MEM should draw visibly less CPU power.
        let mut ilp = server("ILP1", 16, 7);
        let p_ilp = ilp.run(8, |_| None).avg_power(2);
        assert!(
            p_ilp.get() > 95.0 && p_ilp.get() < 125.0,
            "ILP1 peak draw = {p_ilp}"
        );
        let mut mem = server("MEM1", 16, 7);
        let p_mem = mem.run(8, |_| None).avg_power(2);
        assert!(
            p_mem < p_ilp,
            "MEM ({p_mem}) should draw less than ILP ({p_ilp})"
        );
    }

    #[test]
    fn observation_reflects_workload_intensity() {
        let mut s = server("MEM1", 16, 3);
        s.run(3, |_| None);
        let obs = s.observation().unwrap();
        assert_eq!(obs.cores.len(), 16);
        // Memory-bound: plenty of misses, short think times.
        let z = obs.cores[0].min_think_time(fastcap_core::units::Hz::from_ghz(4.0));
        assert!(z.nanos() < 100.0, "MEM think time {z}");
        assert!(obs.cores[0].last_level_misses > 100);
        assert!(obs.memory.bank_queue >= 1.0);
        assert!(obs.memory.bus_queue >= 1.0);
        assert!(obs.memory.bank_service_time.nanos() >= 14.0);

        let mut s = server("ILP2", 16, 3);
        s.run(3, |_| None);
        let obs_ilp = s.observation().unwrap();
        let z_ilp = obs_ilp.cores[0].min_think_time(fastcap_core::units::Hz::from_ghz(4.0));
        assert!(z_ilp > z, "ILP think ({z_ilp}) must exceed MEM think ({z})");
    }

    #[test]
    fn lowering_core_freq_reduces_power_and_throughput() {
        let mut fast = server("MID1", 16, 9);
        let r_fast = fast.run(6, |_| None);

        let slow_decision = DvfsDecision {
            core_freqs: vec![0; 16],
            mem_freq: 9,
            predicted_power: Watts(0.0),
            quantized_power: Watts(0.0),
            budget_trim: Watts(0.0),
            degradation: 0.5,
            budget_bound: true,
            emergency: false,
        };
        let mut slow = server("MID1", 16, 9);
        let r_slow = slow.run(6, |_| Some(slow_decision.clone()));

        assert!(
            r_slow.avg_power(2) < r_fast.avg_power(2),
            "slow {} vs fast {}",
            r_slow.avg_power(2),
            r_fast.avg_power(2)
        );
        let t_fast: f64 = r_fast.throughput(2).iter().sum();
        let t_slow: f64 = r_slow.throughput(2).iter().sum();
        assert!(t_slow < t_fast, "slow {t_slow} vs fast {t_fast}");
    }

    #[test]
    fn lowering_mem_freq_hurts_memory_bound_more() {
        let slow_mem = DvfsDecision {
            core_freqs: vec![9; 16],
            mem_freq: 0,
            predicted_power: Watts(0.0),
            quantized_power: Watts(0.0),
            budget_trim: Watts(0.0),
            degradation: 0.8,
            budget_bound: true,
            emergency: false,
        };
        let loss = |mix: &str| {
            let mut base = server(mix, 16, 11);
            let rb = base.run(6, |_| None);
            let mut capped = server(mix, 16, 11);
            let rc = capped.run(6, |_| Some(slow_mem.clone()));
            let d = rc.degradation_vs(&rb, 2).unwrap();
            d.iter().sum::<f64>() / d.len() as f64
        };
        let mem_loss = loss("MEM1");
        let ilp_loss = loss("ILP2");
        assert!(
            mem_loss > ilp_loss,
            "MEM loss {mem_loss} should exceed ILP loss {ilp_loss}"
        );
        assert!(mem_loss > 1.2, "slow memory must hurt MEM1: {mem_loss}");
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let mut a = server("MIX3", 16, 123);
        let mut b = server("MIX3", 16, 123);
        let ra = a.run(4, |_| None);
        let rb = b.run(4, |_| None);
        assert_eq!(ra, rb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = server("MIX3", 16, 1);
        let mut b = server("MIX3", 16, 2);
        let ra = a.run(4, |_| None);
        let rb = b.run(4, |_| None);
        assert_ne!(ra, rb);
    }

    #[test]
    fn ooo_mode_runs_and_issues_bursts() {
        let cfg = quick_cfg(16).out_of_order();
        let mut s = Server::for_workload(cfg, &mixes::by_name("MEM2").unwrap(), 5).unwrap();
        let r = s.run(4, |_| None);
        // OoO must still retire instructions and draw sane power.
        assert!(r.epochs[3].instructions.iter().all(|&i| i > 0.0));
        assert!(r.avg_power(1).get() > 30.0);
    }

    #[test]
    fn multi_controller_mode_reports_per_controller_samples() {
        let cfg =
            quick_cfg(16).with_controllers(4, crate::config::Interleaving::Skewed { decay: 0.45 });
        let mut s = Server::for_workload(cfg, &mixes::by_name("MEM3").unwrap(), 5).unwrap();
        s.run(4, |_| None);
        let obs = s.observation().unwrap();
        assert_eq!(obs.controllers.len(), 4);
        assert_eq!(obs.access_weights.len(), 16);
        // Skew: controller 0 must be visibly busier (higher Q) than 3.
        assert!(
            obs.controllers[0].bank_queue >= obs.controllers[3].bank_queue,
            "skewed Q: {} vs {}",
            obs.controllers[0].bank_queue,
            obs.controllers[3].bank_queue
        );
    }

    #[test]
    fn scheduling_no_controls_changes_nothing() {
        // The control machinery must be invisible to plain runs: a server
        // that never schedules a control is byte-identical to the
        // pre-scenario engine (also pinned repo-wide by the golden tests).
        let mut plain = server("MIX2", 16, 77);
        let mut silent = server("MIX2", 16, 77);
        // Scheduling for an epoch past the run's end also changes nothing
        // observable within the run.
        silent
            .schedule_control(
                1_000,
                ControlAction::SetIntensity {
                    core: 0,
                    factor: 5.0,
                },
            )
            .unwrap();
        assert_eq!(plain.run(5, |_| None), silent.run(5, |_| None));
    }

    #[test]
    fn control_validation_rejects_bad_input() {
        let mut s = server("MIX1", 16, 1);
        assert!(s
            .schedule_control(
                0,
                ControlAction::SetIntensity {
                    core: 16,
                    factor: 2.0
                }
            )
            .is_err());
        s.run(3, |_| None);
        // Epoch 2 already simulated.
        assert!(s
            .schedule_control(
                2,
                ControlAction::SetIntensity {
                    core: 0,
                    factor: 2.0
                }
            )
            .is_err());
        assert!(s
            .schedule_control(
                3,
                ControlAction::SetIntensity {
                    core: 0,
                    factor: 2.0
                }
            )
            .is_ok());
    }

    #[test]
    fn controls_fire_at_their_epoch_boundary_not_before() {
        // An intensity surge scheduled for epoch 3 must leave epochs 0..3
        // byte-identical to an unperturbed run and visibly change epoch 3+.
        let mut plain = server("MEM1", 16, 9);
        let r_plain = plain.run(6, |_| None);
        let mut surged = server("MEM1", 16, 9);
        for core in 0..16 {
            surged
                .schedule_control(3, ControlAction::SetIntensity { core, factor: 8.0 })
                .unwrap();
        }
        let r_surged = surged.run(6, |_| None);
        for e in 0..3 {
            assert_eq!(
                r_plain.epochs[e], r_surged.epochs[e],
                "epoch {e} perturbed before the event"
            );
        }
        // 8x the miss intensity → far fewer instructions per epoch.
        let i_plain: f64 = r_plain.epochs[4].instructions.iter().sum();
        let i_surged: f64 = r_surged.epochs[4].instructions.iter().sum();
        assert!(
            i_surged < i_plain * 0.5,
            "surge must bite: {i_surged} vs {i_plain}"
        );
    }

    #[test]
    fn offline_cores_are_power_gated_and_idle() {
        let mut s = server("MID1", 16, 21);
        for core in 0..4 {
            s.schedule_control(
                2,
                ControlAction::SetOnline {
                    core,
                    online: false,
                },
            )
            .unwrap();
        }
        let r = s.run(6, |_| None);
        for core in 0..4 {
            assert!(!s.core_active(core));
            // Power-gated from the hotplug epoch onward.
            assert_eq!(r.epochs[3].core_power[core], Watts::ZERO);
            assert_eq!(r.epochs[5].core_power[core], Watts::ZERO);
            // No instructions retire once the in-flight interval drains.
            assert_eq!(r.epochs[5].instructions[core], 0.0);
        }
        // Online cores keep drawing power and retiring work.
        assert!(r.epochs[5].core_power[8].get() > 0.5);
        assert!(r.epochs[5].instructions[8] > 0.0);
    }

    #[test]
    fn offline_cores_stop_drawing_rng() {
        let mut s = server("MID1", 16, 31);
        s.schedule_control(
            2,
            ControlAction::SetOnline {
                core: 3,
                online: false,
            },
        )
        .unwrap();
        s.schedule_control(
            6,
            ControlAction::SetOnline {
                core: 3,
                online: true,
            },
        )
        .unwrap();
        s.run(3, |_| None);
        let at_offline = s.rng_draws().to_vec();
        assert!(at_offline.iter().all(|&d| d > 0), "everyone drew at start");
        s.run(3, |_| None); // epochs 3..6: core 3 fully offline
        let mid = s.rng_draws().to_vec();
        assert_eq!(
            mid[3], at_offline[3],
            "offline core's draw count must freeze"
        );
        assert!(mid[4] > at_offline[4], "online cores keep drawing");
        s.run(3, |_| None); // back online at epoch 6
        assert!(
            s.rng_draws()[3] > mid[3],
            "returning core resumes drawing RNG"
        );
    }

    #[test]
    fn hotplug_round_trip_restarts_the_chain() {
        let mut s = server("MID1", 16, 22);
        s.schedule_control(
            1,
            ControlAction::SetOnline {
                core: 5,
                online: false,
            },
        )
        .unwrap();
        s.schedule_control(
            4,
            ControlAction::SetOnline {
                core: 5,
                online: true,
            },
        )
        .unwrap();
        let r = s.run(8, |_| None);
        assert!(s.core_active(5));
        assert_eq!(r.epochs[3].instructions[5], 0.0, "offline window");
        assert!(
            r.epochs[6].instructions[5] > 0.0,
            "core must resume after coming back online"
        );
        assert!(r.epochs[6].core_power[5].get() > 0.5);
    }

    #[test]
    fn swap_app_changes_behaviour_mid_run() {
        let mut s = server("ILP2", 16, 23);
        // Swap a compute-bound core to the most memory-intensive profile.
        let swim = fastcap_workloads::spec::base("swim").unwrap();
        s.schedule_control(
            3,
            ControlAction::SwapApp {
                core: 0,
                app: Box::new(AppInstance::new(&swim, 0)),
            },
        )
        .unwrap();
        let r = s.run(6, |_| None);
        // swim misses ~50x more: far fewer instructions per epoch after.
        assert!(
            r.epochs[5].instructions[0] < r.epochs[1].instructions[0] * 0.5,
            "after swap {} vs before {}",
            r.epochs[5].instructions[0],
            r.epochs[1].instructions[0]
        );
    }

    #[test]
    fn overlay_control_modulates_load() {
        let mut s = server("MEM2", 16, 24);
        let envelope = PhaseSpec {
            period_epochs: 8.0,
            amplitude: 0.9,
            ripple_period_epochs: 1.0,
            ripple_amplitude: 0.0,
            offset: 0.0,
            mode_period_epochs: 0.0,
            mode_amplitude: 0.0,
        };
        for core in 0..16 {
            s.schedule_control(
                0,
                ControlAction::SetOverlay {
                    core,
                    phase: Some(envelope),
                },
            )
            .unwrap();
        }
        let r = s.run(10, |_| None);
        // The envelope must visibly move per-epoch throughput.
        let sums: Vec<f64> = r
            .epochs
            .iter()
            .map(|e| e.instructions.iter().sum())
            .collect();
        let min = sums.iter().cloned().fold(f64::MAX, f64::min);
        let max = sums.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max / min > 1.3, "envelope too flat: {min}..{max}");
    }

    #[test]
    fn emergency_flag_propagates() {
        let mut s = server("MIX1", 16, 5);
        let d = DvfsDecision {
            core_freqs: vec![0; 16],
            mem_freq: 0,
            predicted_power: Watts(50.0),
            quantized_power: Watts(50.0),
            budget_trim: Watts(0.0),
            degradation: 0.0,
            budget_bound: true,
            emergency: true,
        };
        let r = s.run(3, move |_| Some(d.clone()));
        assert!(r.epochs[1].emergency);
        assert!(!r.epochs[0].emergency, "warm-up epoch has no decision");
    }
}
