//! Determinism contract v2 (DESIGN.md §11): the lane-parallel draw engine
//! must be byte-exact against the serial oracle at every lane count, and
//! per-lane streams must freeze while their core is offline.
//!
//! The oracle (`Server::use_serial_oracle`) generates every draw record at
//! its consumption site with no prefill, no lane pool and no buffering —
//! the role `HeapQueue` plays for the timing wheel. Equality across
//! `lanes ∈ {1, 2, 4}`, seeds and mixes proves the barrier/prefill/pool
//! machinery neither skips, duplicates nor reorders records.

use fastcap_sim::{ControlAction, Server, SimConfig};
use fastcap_workloads::mixes;
use proptest::prelude::*;

const MIXES: [&str; 4] = ["MIX1", "MEM1", "ILP2", "MID1"];

fn build(mix: &str, n_cores: usize, lanes: usize, seed: u64, noise: f64) -> Server {
    let cfg = SimConfig::ispass(n_cores)
        .unwrap()
        .with_time_dilation(200.0)
        .with_meter_noise(noise)
        .with_lanes(lanes);
    Server::for_workload(cfg, &mixes::by_name(mix).unwrap(), seed).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract v2's core clause: `--lanes 1` == `--lanes 2` == `--lanes 4`
    /// == serial oracle, byte for byte, across seeds and mixes.
    #[test]
    fn lane_engine_matches_serial_oracle_at_any_lane_count(
        seed in 0u64..10_000,
        mix_idx in 0usize..MIXES.len(),
        noisy in any::<bool>(),
    ) {
        let mix = MIXES[mix_idx];
        let noise = if noisy { 0.01 } else { 0.0 };
        let mut oracle = build(mix, 4, 1, seed, noise);
        oracle.use_serial_oracle();
        let want = oracle.run(4, |_| None);
        for lanes in [1usize, 2, 4] {
            let mut laned = build(mix, 4, lanes, seed, noise);
            prop_assert_eq!(laned.lane_threads(), lanes);
            let got = laned.run(4, |_| None);
            prop_assert_eq!(&got, &want, "lanes={} diverged from oracle", lanes);
            // The sampling-event attribution is part of the contract too.
            prop_assert_eq!(laned.rng_draws(), oracle.rng_draws());
        }
    }

    /// Lane-count invariance of the *logical* cost ops: `lane_sync` and
    /// `barrier_wait` counts are functions of the simulation, not of the
    /// physical thread count (they price identically in the cost model).
    #[test]
    fn lane_sync_ops_are_lane_count_invariant(seed in 0u64..10_000) {
        let costs: Vec<_> = [1usize, 2, 4]
            .iter()
            .map(|&lanes| {
                let mut s = build("MIX1", 4, lanes, seed, 0.01);
                s.run(3, |_| None);
                s.cost()
            })
            .collect();
        prop_assert_eq!(costs[0], costs[1]);
        prop_assert_eq!(costs[0], costs[2]);
        prop_assert!(costs[0].barrier_waits == 3);
        prop_assert!(costs[0].lane_syncs > 0);
    }
}

/// Regression for the scn_hotplug path: while a core is offline, its lane's
/// draw streams freeze — no think, access or meter record is consumed on
/// its behalf — and resume when it returns, at any lane count.
#[test]
fn offline_core_freezes_its_lane_streams() {
    for lanes in [1usize, 2, 4] {
        let mut s = build("MID1", 16, lanes, 31, 0.01);
        s.schedule_control(
            2,
            ControlAction::SetOnline {
                core: 3,
                online: false,
            },
        )
        .unwrap();
        s.schedule_control(
            6,
            ControlAction::SetOnline {
                core: 3,
                online: true,
            },
        )
        .unwrap();
        s.run(3, |_| None);
        let at_offline: Vec<u64> = (0..16).map(|c| s.lane_draws(c)).collect();
        assert!(
            at_offline.iter().all(|&d| d > 0),
            "every lane drew at start (lanes={lanes})"
        );
        s.run(3, |_| None); // epochs 3..6: core 3 fully offline
        let mid: Vec<u64> = (0..16).map(|c| s.lane_draws(c)).collect();
        assert_eq!(
            mid[3], at_offline[3],
            "offline core's lane must freeze (lanes={lanes})"
        );
        assert!(
            mid[4] > at_offline[4],
            "online cores keep consuming their lanes (lanes={lanes})"
        );
        s.run(3, |_| None); // back online at epoch 6
        assert!(
            s.lane_draws(3) > mid[3],
            "returning core resumes its lane (lanes={lanes})"
        );
    }
}

/// The freeze also holds under the serial oracle, so the lane/oracle pair
/// cannot drift apart across a hotplug window.
#[test]
fn oracle_and_lane_engine_agree_across_hotplug() {
    let plan = |s: &mut Server| {
        for core in [1usize, 5, 9] {
            s.schedule_control(
                1,
                ControlAction::SetOnline {
                    core,
                    online: false,
                },
            )
            .unwrap();
            s.schedule_control(4, ControlAction::SetOnline { core, online: true })
                .unwrap();
        }
    };
    let mut oracle = build("MID1", 16, 1, 77, 0.01);
    oracle.use_serial_oracle();
    plan(&mut oracle);
    let want = oracle.run(7, |_| None);
    for lanes in [2usize, 4] {
        let mut laned = build("MID1", 16, lanes, 77, 0.01);
        plan(&mut laned);
        assert_eq!(laned.run(7, |_| None), want, "lanes={lanes}");
        assert_eq!(laned.lane_draws(1), oracle.lane_draws(1));
    }
}
