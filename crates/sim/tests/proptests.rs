//! Property-based tests for the simulator substrate.
//!
//! Invariants checked: conservation (every enqueued request completes
//! exactly once), transfer blocking (a bank never serves two requests whose
//! windows overlap its pending transfer), FCFS bus order, and closed-network
//! sanity against the MVA upper bound.

use fastcap_core::queueing::mva::{solve, ClosedNetwork};
use fastcap_core::units::Secs;
use fastcap_sim::engine::{Event, EventQueue, Ps};
use fastcap_sim::memory::{MemController, Request};
use proptest::prelude::*;

/// Drives one controller until quiescent; returns completions in order.
fn drain(ctl: &mut MemController, queue: &mut EventQueue, sb: Ps) -> Vec<(Ps, Request)> {
    let mut done = Vec::new();
    while let Some((t, ev)) = queue.pop() {
        match ev {
            Event::BankDone { bank, .. } => ctl.on_bank_done(bank, t, sb, true, queue),
            Event::BusDone { .. } => {
                let r = ctl.on_bus_done(t, sb, queue);
                done.push((t, r));
            }
            Event::CoreReady { .. } | Event::Control { .. } => {
                unreachable!("no cores or controls in this harness")
            }
        }
    }
    done
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: every request completes exactly once, regardless of
    /// arrival pattern, bank spread or service times.
    #[test]
    fn all_requests_complete_once(
        reqs in proptest::collection::vec((0usize..8, 1u64..200, any::<bool>()), 1..120),
        sb in 1u64..100,
    ) {
        let mut ctl = MemController::new(0, 8);
        let mut queue = EventQueue::new();
        for (i, &(bank, service, wb)) in reqs.iter().enumerate() {
            ctl.enqueue(
                bank,
                Request { owner: if wb { None } else { Some(i) }, service },
                0,
                true,
                &mut queue,
            );
        }
        let done = drain(&mut ctl, &mut queue, sb);
        prop_assert_eq!(done.len(), reqs.len());
        prop_assert_eq!(ctl.outstanding(), 0);
        // Every core-owned request returned exactly once.
        let mut owners: Vec<usize> = done.iter().filter_map(|(_, r)| r.owner).collect();
        owners.sort_unstable();
        let mut expect: Vec<usize> = reqs
            .iter()
            .enumerate()
            .filter(|(_, &(_, _, wb))| !wb)
            .map(|(i, _)| i)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(owners, expect);
        // Reads + writes accounted.
        prop_assert_eq!((ctl.activity.reads + ctl.activity.writes) as usize, reqs.len());
    }

    /// Bus completions are spaced at least one transfer apart (single FCFS
    /// bus), and total bus busy time equals completions × s_b.
    #[test]
    fn bus_serializes_transfers(
        reqs in proptest::collection::vec((0usize..4, 5u64..80), 2..60),
        sb in 5u64..60,
    ) {
        let mut ctl = MemController::new(0, 4);
        let mut queue = EventQueue::new();
        for (i, &(bank, service)) in reqs.iter().enumerate() {
            ctl.enqueue(bank, Request { owner: Some(i), service }, 0, false, &mut queue);
        }
        let done = drain(&mut ctl, &mut queue, sb);
        for w in done.windows(2) {
            prop_assert!(w[1].0 >= w[0].0 + sb,
                "transfers overlap: {} then {} (sb={sb})", w[0].0, w[1].0);
        }
        let expected_busy = (done.len() as u64 * sb) as f64;
        prop_assert!((ctl.activity.bus_busy - expected_busy).abs() < 1e-9);
    }

    /// Transfer blocking: per bank, completion k+1 happens at least
    /// service + transfer after completion k (the bank cannot even *serve*
    /// the next request until its transfer finishes).
    #[test]
    fn transfer_blocking_spacing(
        services in proptest::collection::vec(5u64..100, 2..40),
        sb in 5u64..80,
    ) {
        // All requests to one bank: completions must be spaced by at least
        // service_{k+1} + sb.
        let mut ctl = MemController::new(0, 1);
        let mut queue = EventQueue::new();
        for (i, &service) in services.iter().enumerate() {
            ctl.enqueue(0, Request { owner: Some(i), service }, 0, false, &mut queue);
        }
        let done = drain(&mut ctl, &mut queue, sb);
        prop_assert_eq!(done.len(), services.len());
        for k in 1..done.len() {
            let min_gap = done[k].1.service + sb;
            prop_assert!(
                done[k].0 - done[k - 1].0 >= min_gap,
                "bank served during its own transfer: gap {} < {}",
                done[k].0 - done[k - 1].0, min_gap
            );
        }
    }

    /// Counter means stay within physical ranges.
    #[test]
    fn counters_are_physical(
        reqs in proptest::collection::vec((0usize..6, 5u64..60), 1..80),
        sb in 1u64..40,
    ) {
        let n = reqs.len();
        let mut ctl = MemController::new(0, 6);
        let mut queue = EventQueue::new();
        for (i, &(bank, service)) in reqs.iter().enumerate() {
            ctl.enqueue(bank, Request { owner: Some(i), service }, 0, true, &mut queue);
        }
        drain(&mut ctl, &mut queue, sb);
        let q = ctl.counters.mean_q();
        let u = ctl.counters.mean_u();
        prop_assert!(q >= 1.0 && q <= n as f64, "Q = {q}");
        prop_assert!(u >= 1.0 && u <= n as f64 + 1.0, "U = {u}");
        let s = ctl.counters.mean_service_ps(0);
        prop_assert!((5.0..60.0).contains(&s), "s_m = {s}");
    }
}

/// MVA cross-check: with negligible transfer times (no meaningful blocking)
/// the simulated closed network's throughput approaches the MVA solution;
/// with blocking it must not exceed it.
#[test]
fn simulated_throughput_bounded_by_mva() {
    use fastcap_sim::{Server, SimConfig};
    use fastcap_workloads::mixes;

    let cfg = SimConfig::ispass(16)
        .unwrap()
        .with_time_dilation(50.0)
        .with_meter_noise(0.0);
    let mix = mixes::by_name("MID2").unwrap();
    let mut server = Server::for_workload(cfg.clone(), &mix, 9).unwrap();
    let run = server.run(8, |_| None);
    let sim_rate: f64 = {
        // Memory accesses per second = instruction throughput / inst-per-miss.
        let tp = run.throughput(2);
        let apps = mix.instantiate(16).unwrap();
        tp.iter()
            .zip(&apps)
            .map(|(t, a)| t / a.profile.instructions_per_miss())
            .sum()
    };

    // MVA model of the same network (think+L2 as delay, banks + bus as
    // queueing stations with per-station visit ratios 1/B and 1).
    let apps = mix.instantiate(16).unwrap();
    let mean_z: f64 = apps
        .iter()
        .map(|a| a.profile.instructions_per_miss() * a.profile.base_cpi / 4.0e9)
        .sum::<f64>()
        / apps.len() as f64;
    let mean_sm: f64 = apps
        .iter()
        .map(|a| cfg.dram.mean_service_time(a.profile.row_hit_ratio).get())
        .sum::<f64>()
        / apps.len() as f64;
    // Writebacks add traffic: inflate visit ratios by the mean writeback
    // probability.
    let wb: f64 = apps
        .iter()
        .map(|a| a.profile.writeback_probability())
        .sum::<f64>()
        / apps.len() as f64;
    let banks = cfg.banks_per_controller;
    let mut stations: Vec<(f64, Secs)> = (0..banks)
        .map(|_| ((1.0 + wb) / banks as f64, Secs(mean_sm)))
        .collect();
    stations.push((1.0 + wb, Secs(cfg.min_bus_transfer_time().get())));
    let net = ClosedNetwork {
        customers: 16,
        think: Secs(mean_z + cfg.l2_time.get()),
        stations,
    };
    let mva_rate = solve(&net).unwrap().throughput;
    assert!(
        sim_rate <= mva_rate * 1.10,
        "sim {sim_rate:.3e} should not exceed MVA bound {mva_rate:.3e} (+10% slack)"
    );
    assert!(
        sim_rate >= mva_rate * 0.35,
        "sim {sim_rate:.3e} implausibly far below MVA {mva_rate:.3e}"
    );
}

// ---- timing wheel vs. binary-heap oracle -------------------------------
//
// The timing wheel (DESIGN.md §6) must pop in exactly the same
// (time, FIFO-sequence) order as the pre-overhaul `BinaryHeap` — that
// equivalence is what makes artifact bytes queue-implementation-invariant.
// These properties drive both queues through identical push/pop schedules
// spanning every wheel level, the overflow heap, cascades, and
// behind-the-cursor pushes.

use fastcap_sim::engine::HeapQueue;

/// Event constructor covering all three variants from packed test data.
fn event_for(i: usize) -> Event {
    match i % 3 {
        0 => Event::CoreReady { core: i % 64 },
        1 => Event::BankDone {
            ctrl: i % 4,
            bank: i % 32,
        },
        _ => Event::BusDone { ctrl: i % 4 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pops match the heap oracle exactly for arbitrary interleaved
    /// push/pop traces whose deltas span all wheel levels and overflow.
    #[test]
    fn wheel_matches_heap_oracle(
        ops in proptest::collection::vec((1u64..1u64 << 38, 0u32..4), 1..400),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut cursor: Ps = 0;
        for (i, &(delta, kind)) in ops.iter().enumerate() {
            // Skew deltas so most are near-future but some hit deep
            // levels / overflow, like a simulation schedule.
            let delta = match kind {
                0 => delta % (1 << 14),
                1 => delta % (1 << 20),
                2 => delta % (1 << 27),
                _ => delta, // up to ~2^38 ps: overflow territory
            };
            let ev = event_for(i);
            wheel.push(cursor + delta, ev);
            heap.push(cursor + delta, ev);
            prop_assert_eq!(wheel.len(), heap.len());
            if i % 3 == 0 {
                let w = wheel.pop();
                let h = heap.pop();
                prop_assert_eq!(w, h);
                if let Some((t, _)) = w {
                    // Advance like a simulator: pops move the cursor, so
                    // later pushes land behind, at, and ahead of it.
                    cursor = cursor.max(t);
                }
            }
        }
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }

    /// `pop_if_before` is exactly "pop when earlier than the bound":
    /// equivalent to the oracle's peek-then-pop at every epoch boundary.
    #[test]
    fn pop_if_before_matches_bounded_oracle(
        pushes in proptest::collection::vec(1u64..1u64 << 22, 1..200),
        spans in proptest::collection::vec(1u64..1u64 << 16, 1..40),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        for (i, &t) in pushes.iter().enumerate() {
            let ev = event_for(i);
            wheel.push(t, ev);
            heap.push(t, ev);
        }
        let mut end: Ps = 0;
        for &span in &spans {
            end += span;
            loop {
                let expected = match heap.peek_time() {
                    Some(t) if t < end => heap.pop(),
                    _ => None,
                };
                let got = wheel.pop_if_before(end);
                prop_assert_eq!(got, expected);
                if got.is_none() {
                    break;
                }
            }
        }
        prop_assert_eq!(wheel.len(), heap.len());
    }

    /// Equal timestamps pop strictly in insertion order at any scale,
    /// including across level boundaries after long idle fast-forwards.
    #[test]
    fn fifo_among_equal_timestamps_everywhere(
        t in 1u64..1u64 << 36,
        n in 2usize..40,
    ) {
        let mut wheel = EventQueue::new();
        for i in 0..n {
            wheel.push(t, Event::CoreReady { core: i });
        }
        for i in 0..n {
            let (pt, ev) = wheel.pop().expect("n events pending");
            prop_assert_eq!(pt, t);
            prop_assert_eq!(ev, Event::CoreReady { core: i });
        }
    }
}
