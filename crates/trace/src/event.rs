//! The typed event vocabulary.
//!
//! One enum, a handful of variants — each one a decision point or state
//! transition an operator would want on a timeline. Adding an event type
//! (DESIGN.md §12): add a variant here, emit it from the owning layer
//! under the `Option<&mut Tracer>` check, and teach
//! [`crate::export::chrome_trace_json`] how to render it (pick a track,
//! a phase, and stable `args` keys).

/// Why a policy chose what it chose, for one governed epoch.
///
/// The record pairs the *inputs* the policy saw (in-force budget, the
/// observation summary from the previous epoch) with the *work* it did
/// (solver iterations, candidates examined) and the *outcome* (chosen
/// frequency vector, predicted vs. measured power, remaining slack).
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Epoch index within the run (0-based).
    pub epoch: u64,
    /// Policy name (`CappingPolicy::name`).
    pub policy: String,
    /// In-force absolute power budget, if the policy is capping.
    pub budget_w: Option<f64>,
    /// Total measured power from the observation the policy decided on
    /// (one epoch stale by construction — the control loop's latency).
    pub observed_w: f64,
    /// Solver inner-loop iterations spent on this decision.
    pub solver_iters: u64,
    /// Candidate configurations examined (bus points + grid points).
    pub candidates: u64,
    /// Chosen per-core frequency levels (ladder indices).
    pub core_freqs: Vec<usize>,
    /// Chosen memory frequency level.
    pub mem_freq: usize,
    /// Power the policy's model predicted at the *continuous* optimum
    /// (saturates the cap when budget-bound, by Theorem 1).
    pub predicted_w: f64,
    /// Power the model predicts at the **quantized** ladder point — the
    /// frequencies actually actuated. The number to audit against the
    /// cap: with quantize-down it stays at or below the effective budget
    /// whenever the solve is budget-bound.
    pub quantized_w: f64,
    /// Slack-feedback integrator trim subtracted from the cap for this
    /// solve (0 = disabled or fully unwound).
    pub trim_w: f64,
    /// Power actually measured over the governed epoch.
    pub measured_w: f64,
    /// `budget_w - measured_w` (negative = overshoot), when capping.
    pub slack_w: Option<f64>,
    /// The continuous optimum was budget-bound before quantization.
    pub budget_bound: bool,
    /// The policy engaged its emergency path.
    pub emergency: bool,
    /// Modeled nanoseconds this decision cost (the policy's
    /// `decision_cost` delta priced by the cost model).
    pub decide_ns: u64,
}

/// Lane-engine activity over one epoch: logical counts only, identical at
/// any physical `--lanes` width (contract v2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneRecord {
    /// Epoch index within the run.
    pub epoch: u64,
    /// RNG draws generated into lane streams this epoch (prefill depth).
    pub prefill_draws: u64,
    /// Lane-stream refills at conservative sync points (refill fallbacks).
    pub refill_fallbacks: u64,
    /// Epoch-boundary hard barriers.
    pub barrier_waits: u64,
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// One simulated epoch, as a span on the modeled clock.
    EpochSpan {
        /// Epoch index within the run.
        epoch: u64,
        /// Span start, modeled nanoseconds since run start.
        t_start_ns: u64,
        /// Span end, modeled nanoseconds since run start.
        t_end_ns: u64,
        /// Total power measured over the epoch, watts.
        power_w: f64,
    },
    /// A policy decision audit record.
    Decision(DecisionRecord),
    /// A scenario/fleet control action taking effect: budget step, core
    /// hotplug, surge, overlay, app swap, node offline…
    Control {
        /// Epoch index at which the action takes effect.
        epoch: u64,
        /// Stable action kind (e.g. `budget_step`, `hotplug`, `surge`).
        kind: &'static str,
        /// Human-readable detail (new fraction, mask, target node…).
        detail: String,
    },
    /// Lane-engine counters for one epoch.
    Lane(LaneRecord),
    /// A fleet budget-tree allocation at one interior node for one epoch.
    TreeAlloc {
        /// Epoch index within the fleet run.
        epoch: u64,
        /// Tree-node name.
        node: String,
        /// Watts committed at this node by the water-filling divide.
        committed_w: f64,
        /// Watts handed to each child, in child order.
        children_w: Vec<f64>,
    },
}

impl TraceEvent {
    /// Stable short label for summaries and drop accounting.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::EpochSpan { .. } => "epoch",
            TraceEvent::Decision(_) => "decision",
            TraceEvent::Control { .. } => "control",
            TraceEvent::Lane(_) => "lane",
            TraceEvent::TreeAlloc { .. } => "tree_alloc",
        }
    }
}

/// An event plus its modeled-clock timestamp and intra-stream sequence
/// number (the tiebreak for events sharing a timestamp).
#[derive(Debug, Clone, PartialEq)]
pub struct Stamped {
    /// Modeled nanoseconds since the owning run started.
    pub t_ns: u64,
    /// Monotonic per-stream sequence number.
    pub seq: u64,
    /// The event.
    pub event: TraceEvent,
}
