//! Exporters: Chrome trace-event JSON (Perfetto-loadable), a merged
//! metrics CSV, and a terminal summary table.
//!
//! Track layout (per stream = one Chrome "process"): tid 0 carries epoch
//! spans, tid 1 decision instants, tid 2 control instants, tid 3 the
//! lane-engine counter track, tid 4 tree-node counter tracks. Per-core
//! frequency counter tracks and per-node committed-watts tracks are
//! *derived* at export time from decision / tree events, so they cost no
//! ring-buffer capacity during the run.

use std::fmt::Write as _;

use serde_json::Value;

use crate::event::{DecisionRecord, TraceEvent};
use crate::hub::TraceStream;
use crate::metrics::MetricsRegistry;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn us(t_ns: u64) -> Value {
    Value::Float(t_ns as f64 / 1000.0)
}

fn meta(pid: u64, tid: u64, kind: &str, name: &str) -> Value {
    obj(vec![
        ("name", Value::Str(kind.to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::UInt(pid)),
        ("tid", Value::UInt(tid)),
        ("args", obj(vec![("name", Value::Str(name.to_string()))])),
    ])
}

fn counter(pid: u64, t_ns: u64, name: String, args: Vec<(&str, Value)>) -> Value {
    obj(vec![
        ("name", Value::Str(name)),
        ("ph", Value::Str("C".to_string())),
        ("pid", Value::UInt(pid)),
        ("tid", Value::UInt(3)),
        ("ts", us(t_ns)),
        ("args", obj(args)),
    ])
}

fn decision_args(d: &DecisionRecord) -> Value {
    let mut entries = vec![
        ("epoch", Value::UInt(d.epoch)),
        ("policy", Value::Str(d.policy.clone())),
    ];
    if let Some(b) = d.budget_w {
        entries.push(("budget_w", Value::Float(b)));
    }
    entries.push(("observed_w", Value::Float(d.observed_w)));
    entries.push(("solver_iters", Value::UInt(d.solver_iters)));
    entries.push(("candidates", Value::UInt(d.candidates)));
    entries.push((
        "core_freqs",
        Value::Array(
            d.core_freqs
                .iter()
                .map(|&f| Value::UInt(f as u64))
                .collect(),
        ),
    ));
    entries.push(("mem_freq", Value::UInt(d.mem_freq as u64)));
    entries.push(("predicted_w", Value::Float(d.predicted_w)));
    entries.push(("quantized_w", Value::Float(d.quantized_w)));
    entries.push(("trim_w", Value::Float(d.trim_w)));
    entries.push(("measured_w", Value::Float(d.measured_w)));
    if let Some(s) = d.slack_w {
        entries.push(("slack_w", Value::Float(s)));
    }
    entries.push(("budget_bound", Value::Bool(d.budget_bound)));
    entries.push(("emergency", Value::Bool(d.emergency)));
    entries.push(("decide_ns", Value::UInt(d.decide_ns)));
    obj(entries)
}

/// Renders submitted streams as a Chrome trace-event JSON document.
///
/// Pure function of the (already name-sorted) streams: byte-identical
/// output for identical input, no wall clock, no host state.
#[must_use]
pub fn chrome_trace_json(streams: &[TraceStream]) -> String {
    let mut events: Vec<Value> = Vec::new();
    for (i, stream) in streams.iter().enumerate() {
        let pid = i as u64 + 1;
        events.push(meta(pid, 0, "process_name", &stream.name));
        events.push(meta(pid, 0, "thread_name", "epochs"));
        events.push(meta(pid, 1, "thread_name", "decisions"));
        events.push(meta(pid, 2, "thread_name", "control"));
        events.push(meta(pid, 3, "thread_name", "counters"));
        for stamped in &stream.events {
            match &stamped.event {
                TraceEvent::EpochSpan {
                    epoch,
                    t_start_ns,
                    t_end_ns,
                    power_w,
                } => {
                    events.push(obj(vec![
                        ("name", Value::Str(format!("epoch {epoch}"))),
                        ("ph", Value::Str("X".to_string())),
                        ("pid", Value::UInt(pid)),
                        ("tid", Value::UInt(0)),
                        ("ts", us(*t_start_ns)),
                        ("dur", us(t_end_ns.saturating_sub(*t_start_ns))),
                        ("args", obj(vec![("power_w", Value::Float(*power_w))])),
                    ]));
                    events.push(counter(
                        pid,
                        *t_end_ns,
                        "power_w".to_string(),
                        vec![("watts", Value::Float(*power_w))],
                    ));
                }
                TraceEvent::Decision(d) => {
                    events.push(obj(vec![
                        ("name", Value::Str(format!("decide {}", d.policy))),
                        ("ph", Value::Str("i".to_string())),
                        ("s", Value::Str("t".to_string())),
                        ("pid", Value::UInt(pid)),
                        ("tid", Value::UInt(1)),
                        ("ts", us(stamped.t_ns)),
                        ("args", decision_args(d)),
                    ]));
                    for (c, &level) in d.core_freqs.iter().enumerate() {
                        events.push(counter(
                            pid,
                            stamped.t_ns,
                            format!("core{c} freq"),
                            vec![("level", Value::UInt(level as u64))],
                        ));
                    }
                }
                TraceEvent::Control {
                    epoch,
                    kind,
                    detail,
                } => {
                    events.push(obj(vec![
                        ("name", Value::Str((*kind).to_string())),
                        ("ph", Value::Str("i".to_string())),
                        ("s", Value::Str("p".to_string())),
                        ("pid", Value::UInt(pid)),
                        ("tid", Value::UInt(2)),
                        ("ts", us(stamped.t_ns)),
                        (
                            "args",
                            obj(vec![
                                ("epoch", Value::UInt(*epoch)),
                                ("detail", Value::Str(detail.clone())),
                            ]),
                        ),
                    ]));
                }
                TraceEvent::Lane(l) => {
                    events.push(counter(
                        pid,
                        stamped.t_ns,
                        "lane_engine".to_string(),
                        vec![
                            ("prefill_draws", Value::UInt(l.prefill_draws)),
                            ("refill_fallbacks", Value::UInt(l.refill_fallbacks)),
                            ("barrier_waits", Value::UInt(l.barrier_waits)),
                        ],
                    ));
                }
                TraceEvent::TreeAlloc {
                    node,
                    committed_w,
                    children_w,
                    ..
                } => {
                    events.push(counter(
                        pid,
                        stamped.t_ns,
                        format!("node {node} committed_w"),
                        vec![("watts", Value::Float(*committed_w))],
                    ));
                    for (c, w) in children_w.iter().enumerate() {
                        events.push(counter(
                            pid,
                            stamped.t_ns,
                            format!("node {node} child{c}_w"),
                            vec![("watts", Value::Float(*w))],
                        ));
                    }
                }
            }
        }
        if stream.dropped > 0 {
            events.push(obj(vec![
                ("name", Value::Str("ring_dropped".to_string())),
                ("ph", Value::Str("i".to_string())),
                ("s", Value::Str("p".to_string())),
                ("pid", Value::UInt(pid)),
                ("tid", Value::UInt(2)),
                ("ts", Value::Float(0.0)),
                ("args", obj(vec![("events", Value::UInt(stream.dropped))])),
            ]));
        }
    }
    let doc = obj(vec![
        ("displayTimeUnit", Value::Str("ms".to_string())),
        ("traceEvents", Value::Array(events)),
    ]);
    let mut out = serde_json::to_string(&doc).expect("trace json render");
    out.push('\n');
    out
}

/// Merges every stream's metrics (in stream order — already name-sorted)
/// and renders the combined registry as CSV.
#[must_use]
pub fn metrics_csv(streams: &[TraceStream]) -> String {
    let mut merged = MetricsRegistry::default();
    for s in streams {
        merged.merge(&s.metrics);
    }
    merged.to_csv()
}

/// A per-stream roll-up table for the terminal: event/decision counts,
/// ring drops, mean modeled decision latency, and worst overshoot.
#[must_use]
pub fn terminal_summary(streams: &[TraceStream]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<52} {:>7} {:>9} {:>6} {:>12} {:>10}",
        "stream", "events", "decisions", "drops", "decide_us", "overshoot%"
    );
    for s in streams {
        let mut decisions = 0u64;
        let mut decide_ns_sum = 0u64;
        let mut worst_overshoot = f64::NEG_INFINITY;
        for stamped in &s.events {
            if let TraceEvent::Decision(d) = &stamped.event {
                decisions += 1;
                decide_ns_sum += d.decide_ns;
                if let Some(b) = d.budget_w {
                    if b > 0.0 {
                        worst_overshoot = worst_overshoot.max((d.measured_w - b) / b * 100.0);
                    }
                }
            }
        }
        let mean_us = if decisions > 0 {
            decide_ns_sum as f64 / decisions as f64 / 1000.0
        } else {
            0.0
        };
        let overshoot = if worst_overshoot.is_finite() {
            format!("{worst_overshoot:+.2}")
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "{:<52} {:>7} {:>9} {:>6} {:>12.2} {:>10}",
            s.name,
            s.events.len(),
            decisions,
            s.dropped,
            mean_us,
            overshoot
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LaneRecord, Stamped};

    fn stream_with(events: Vec<TraceEvent>) -> TraceStream {
        TraceStream {
            name: "test/stream".to_string(),
            events: events
                .into_iter()
                .enumerate()
                .map(|(i, event)| Stamped {
                    t_ns: i as u64 * 1000,
                    seq: i as u64,
                    event,
                })
                .collect(),
            dropped: 0,
            metrics: MetricsRegistry::default(),
        }
    }

    fn sample_decision() -> DecisionRecord {
        DecisionRecord {
            epoch: 3,
            policy: "FastCap".to_string(),
            budget_w: Some(80.0),
            observed_w: 78.5,
            solver_iters: 12,
            candidates: 40,
            core_freqs: vec![5, 5, 4],
            mem_freq: 2,
            predicted_w: 79.0,
            quantized_w: 78.2,
            trim_w: 0.5,
            measured_w: 81.0,
            slack_w: Some(-1.0),
            budget_bound: true,
            emergency: false,
            decide_ns: 2500,
        }
    }

    #[test]
    fn chrome_json_parses_and_has_expected_phases() {
        let streams = vec![stream_with(vec![
            TraceEvent::EpochSpan {
                epoch: 0,
                t_start_ns: 0,
                t_end_ns: 1000,
                power_w: 75.0,
            },
            TraceEvent::Decision(sample_decision()),
            TraceEvent::Control {
                epoch: 1,
                kind: "budget_step",
                detail: "fraction=0.5".to_string(),
            },
            TraceEvent::Lane(LaneRecord {
                epoch: 1,
                prefill_draws: 64,
                refill_fallbacks: 2,
                barrier_waits: 1,
            }),
            TraceEvent::TreeAlloc {
                epoch: 0,
                node: "rack0".to_string(),
                committed_w: 100.0,
                children_w: vec![60.0, 40.0],
            },
        ])];
        let json = chrome_trace_json(&streams);
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let events = match v.get("traceEvents") {
            Some(Value::Array(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        };
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert!(phases.contains(&"M"));
        assert!(phases.contains(&"X"));
        assert!(phases.contains(&"i"));
        assert!(phases.contains(&"C"));
        // One derived freq counter track per core.
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(|p| p.as_str()))
            .collect();
        assert!(names.contains(&"core0 freq"));
        assert!(names.contains(&"core2 freq"));
        assert!(names.contains(&"node rack0 committed_w"));
    }

    #[test]
    fn export_is_deterministic() {
        let streams = vec![stream_with(vec![TraceEvent::Decision(sample_decision())])];
        assert_eq!(chrome_trace_json(&streams), chrome_trace_json(&streams));
    }

    #[test]
    fn summary_rolls_up_decisions() {
        let streams = vec![stream_with(vec![TraceEvent::Decision(sample_decision())])];
        let s = terminal_summary(&streams);
        assert!(s.contains("test/stream"));
        assert!(s.contains("+1.25")); // (81-80)/80 overshoot
    }
}
