//! The process-global trace hub.
//!
//! The repro CLI arms tracing once per process (`--trace FILE`); run
//! loops deep in the stack then check [`hub()`] — a single atomic load
//! when tracing is off — and, when armed, record into a **private**
//! [`Tracer`] which they submit under a deterministic stream name when
//! the run finishes. Submission order depends on `--jobs` scheduling;
//! [`TraceHub::drain_sorted`] sorts streams by name (then serialized
//! content as the tiebreak for duplicate names), so exported bytes do
//! not.

use std::sync::{Mutex, OnceLock};

use fastcap_core::cost::OPS;

use crate::event::Stamped;
use crate::metrics::MetricsRegistry;
use crate::sink::Tracer;

/// Hub configuration, fixed at install time.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Ring-buffer capacity per stream (events).
    pub capacity: usize,
    /// `COST_MODEL.json` per-op nanosecond weights, [`OPS`]-ordered.
    pub ns_weights: [f64; OPS.len()],
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 1 << 13,
            ns_weights: [0.0; OPS.len()],
        }
    }
}

/// One finished, submitted trace stream.
#[derive(Debug, Clone)]
pub struct TraceStream {
    /// Deterministic stream name (policy/mix/seed…), also the Chrome
    /// process name.
    pub name: String,
    /// Stamped events, oldest first.
    pub events: Vec<Stamped>,
    /// Events the bounded ring dropped (oldest-first) during the run.
    pub dropped: u64,
    /// Run-scoped metrics.
    pub metrics: MetricsRegistry,
}

/// Collects finished trace streams from concurrently-running shards.
#[derive(Debug)]
pub struct TraceHub {
    cfg: TraceConfig,
    streams: Mutex<Vec<TraceStream>>,
}

static HUB: OnceLock<TraceHub> = OnceLock::new();

/// Arms process-global tracing. Returns `false` if already armed (the
/// first configuration wins — tracing stays armed for the process
/// lifetime, mirroring the CLI's once-per-invocation `--trace`).
pub fn install(cfg: TraceConfig) -> bool {
    HUB.set(TraceHub {
        cfg,
        streams: Mutex::new(Vec::new()),
    })
    .is_ok()
}

/// The armed hub, if any. This is the once-per-run/epoch check the hot
/// paths make; when tracing is off it is a single atomic load.
#[must_use]
pub fn hub() -> Option<&'static TraceHub> {
    HUB.get()
}

impl TraceHub {
    /// A fresh private tracer configured like the hub.
    #[must_use]
    pub fn tracer(&self) -> Tracer {
        Tracer::new(self.cfg.capacity, self.cfg.ns_weights)
    }

    /// The configured per-op weights (for pricing outside a tracer).
    #[must_use]
    pub fn ns_weights(&self) -> [f64; OPS.len()] {
        self.cfg.ns_weights
    }

    /// Submits a finished run's tracer under `name`.
    pub fn submit(&self, name: String, tracer: Tracer) {
        let (events, dropped, metrics) = tracer.into_parts();
        if events.is_empty() && metrics.is_empty() {
            return;
        }
        self.streams
            .lock()
            .expect("trace hub poisoned")
            .push(TraceStream {
                name,
                events,
                dropped,
                metrics,
            });
    }

    /// Takes all submitted streams, sorted by `(name, event bytes)` so
    /// the result is independent of submission (i.e. `--jobs`) order.
    #[must_use]
    pub fn drain_sorted(&self) -> Vec<TraceStream> {
        let mut streams = std::mem::take(&mut *self.streams.lock().expect("trace hub poisoned"));
        streams.sort_by(|a, b| {
            a.name
                .cmp(&b.name)
                .then_with(|| format!("{:?}", a.events).cmp(&format!("{:?}", b.events)))
        });
        streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    #[test]
    fn drain_sorts_streams_by_name_regardless_of_submit_order() {
        // Use a local hub (the global one is process-wide).
        let hub = TraceHub {
            cfg: TraceConfig::default(),
            streams: Mutex::new(Vec::new()),
        };
        for name in ["b/stream", "a/stream", "c/stream"] {
            let mut t = hub.tracer();
            t.record(TraceEvent::Control {
                epoch: 0,
                kind: "budget_step",
                detail: name.to_string(),
            });
            hub.submit(name.to_string(), t);
        }
        let names: Vec<String> = hub.drain_sorted().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["a/stream", "b/stream", "c/stream"]);
        // Drained: a second drain is empty.
        assert!(hub.drain_sorted().is_empty());
    }

    #[test]
    fn empty_tracers_are_not_submitted() {
        let hub = TraceHub {
            cfg: TraceConfig::default(),
            streams: Mutex::new(Vec::new()),
        };
        hub.submit("empty".into(), hub.tracer());
        assert!(hub.drain_sorted().is_empty());
    }
}
