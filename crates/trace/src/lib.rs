//! Deterministic structured tracing and metrics for the FastCap stack.
//!
//! Every layer of the stack — optimizer, policies, DES sim, scenario
//! interpreter, fleet budget trees — can emit typed [`TraceEvent`]s into a
//! bounded ring buffer, timestamped by the **deterministic modeled-cost
//! clock**: cumulative [`fastcap_core::cost::CostCounter`] deltas priced by
//! the checked-in `COST_MODEL.json` per-op nanosecond weights. No wall
//! clock is ever read, so trace bytes are a pure function of (repo state,
//! `--seed`) and are invariant at any `--jobs` / `--lanes` level — traces
//! themselves are golden-pinnable, just like artifact bytes (determinism
//! contract v2, DESIGN.md §12).
//!
//! Design rules:
//!
//! - **Zero overhead when off.** Tracing is armed per run by handing the
//!   run loop an `Option<&mut Tracer>`; every loop checks it once per
//!   epoch. Nothing in this crate touches a `CostCounter` — trace work is
//!   never part of the modeled cost, so arming a tracer cannot move
//!   artifact bytes or trip `repro costgate`.
//! - **Read-only probes.** Emitters only read state the run loop already
//!   has (cost counters, decisions, epoch reports); they never mutate
//!   simulation state or draw randomness.
//! - **Deterministic aggregation.** Concurrent runs (sweep shards) record
//!   into private [`Tracer`]s and submit them to the process-global
//!   [`hub`] under a deterministic stream name; export sorts streams by
//!   name (then content), so the merged trace is `--jobs`-invariant.

pub mod event;
pub mod export;
pub mod hub;
pub mod metrics;
pub mod sink;

pub use event::{DecisionRecord, LaneRecord, Stamped, TraceEvent};
pub use export::{chrome_trace_json, metrics_csv, terminal_summary};
pub use hub::{hub, install, TraceConfig, TraceHub};
pub use metrics::{Metric, MetricsRegistry};
pub use sink::{RingBuffer, TraceSink, Tracer};
