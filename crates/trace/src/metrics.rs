//! A small metrics registry: counters, gauges, and fixed-bucket
//! histograms, keyed by name in a `BTreeMap` so every flush order is
//! deterministic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic count.
    Counter(u64),
    /// Last-written value.
    Gauge(f64),
    /// Fixed upper-bound buckets (+ implicit overflow), with count and
    /// value sum for mean recovery.
    Histogram {
        /// Inclusive upper bounds, ascending; values above the last
        /// bound land in the overflow bucket.
        bounds: Vec<f64>,
        /// Per-bucket observation counts; `len == bounds.len() + 1`.
        counts: Vec<u64>,
        /// Sum of all observed values.
        sum: f64,
        /// Total observations.
        n: u64,
    },
}

/// Deterministically-ordered metric store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// Adds `n` to the named counter (creating it at zero).
    pub fn counter_add(&mut self, name: &str, n: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += n,
            _ => debug_assert!(false, "metric {name} is not a counter"),
        }
    }

    /// Sets the named gauge.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.entries.insert(name.to_string(), Metric::Gauge(v));
    }

    /// Observes `v` into the named fixed-bucket histogram. The first
    /// observation fixes the bounds; later calls must pass the same.
    pub fn histogram_observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        let m = self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram {
                bounds: bounds.to_vec(),
                counts: vec![0; bounds.len() + 1],
                sum: 0.0,
                n: 0,
            });
        if let Metric::Histogram {
            bounds,
            counts,
            sum,
            n,
        } = m
        {
            let idx = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
            counts[idx] += 1;
            *sum += v;
            *n += 1;
        } else {
            debug_assert!(false, "metric {name} is not a histogram");
        }
    }

    /// `true` when nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, metric)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Metric)> {
        self.entries.iter()
    }

    /// Looks up one metric by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.entries.get(name)
    }

    /// Merges another registry into this one: counters add, gauges take
    /// the incoming value, histograms add bucket-wise (bounds must
    /// match).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, m) in other.iter() {
            match m {
                Metric::Counter(c) => self.counter_add(name, *c),
                Metric::Gauge(v) => self.gauge_set(name, *v),
                Metric::Histogram {
                    bounds,
                    counts,
                    sum,
                    n,
                } => {
                    let mine =
                        self.entries
                            .entry(name.clone())
                            .or_insert_with(|| Metric::Histogram {
                                bounds: bounds.clone(),
                                counts: vec![0; counts.len()],
                                sum: 0.0,
                                n: 0,
                            });
                    if let Metric::Histogram {
                        bounds: my_bounds,
                        counts: my_counts,
                        sum: my_sum,
                        n: my_n,
                    } = mine
                    {
                        debug_assert_eq!(my_bounds, bounds, "histogram {name} bounds differ");
                        for (a, b) in my_counts.iter_mut().zip(counts) {
                            *a += b;
                        }
                        *my_sum += sum;
                        *my_n += n;
                    }
                }
            }
        }
    }

    /// Renders the registry as CSV rows `metric,kind,key,value` under a
    /// fixed header, name-ordered — byte-deterministic.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,kind,key,value\n");
        for (name, m) in &self.entries {
            match m {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name},counter,value,{c}");
                }
                Metric::Gauge(v) => {
                    let _ = writeln!(out, "{name},gauge,value,{v}");
                }
                Metric::Histogram {
                    bounds,
                    counts,
                    sum,
                    n,
                } => {
                    for (i, c) in counts.iter().enumerate() {
                        if i < bounds.len() {
                            let _ = writeln!(out, "{name},histogram,le_{},{c}", bounds[i]);
                        } else {
                            let _ = writeln!(out, "{name},histogram,le_inf,{c}");
                        }
                    }
                    let _ = writeln!(out, "{name},histogram,sum,{sum}");
                    let _ = writeln!(out, "{name},histogram,count,{n}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip_through_csv() {
        let mut r = MetricsRegistry::default();
        r.counter_add("epochs", 40);
        r.counter_add("epochs", 2);
        r.gauge_set("budget_fraction", 0.9);
        r.histogram_observe("overshoot_pct", &[1.0, 5.0], 0.5);
        r.histogram_observe("overshoot_pct", &[1.0, 5.0], 7.0);
        let csv = r.to_csv();
        assert!(csv.starts_with("metric,kind,key,value\n"));
        assert!(csv.contains("epochs,counter,value,42\n"));
        assert!(csv.contains("budget_fraction,gauge,value,0.9\n"));
        assert!(csv.contains("overshoot_pct,histogram,le_1,1\n"));
        assert!(csv.contains("overshoot_pct,histogram,le_inf,1\n"));
        assert!(csv.contains("overshoot_pct,histogram,count,2\n"));
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::default();
        let mut b = MetricsRegistry::default();
        a.counter_add("solver_iters", 10);
        b.counter_add("solver_iters", 5);
        a.histogram_observe("h", &[1.0], 0.5);
        b.histogram_observe("h", &[1.0], 2.0);
        a.merge(&b);
        assert_eq!(a.get("solver_iters"), Some(&Metric::Counter(15)));
        match a.get("h").unwrap() {
            Metric::Histogram { counts, n, .. } => {
                assert_eq!(counts, &vec![1, 1]);
                assert_eq!(*n, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
