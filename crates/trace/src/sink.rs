//! Sinks and the per-run [`Tracer`] handle.

use std::collections::VecDeque;

use fastcap_core::cost::{CostCounter, OPS};

use crate::event::{Stamped, TraceEvent};
use crate::metrics::MetricsRegistry;

/// Anything that can accept a stamped trace event.
pub trait TraceSink {
    /// Records one event at modeled time `t_ns`.
    fn record(&mut self, t_ns: u64, event: TraceEvent);
}

/// A bounded FIFO event buffer: at capacity, the **oldest** event is
/// dropped (and counted), so a long run keeps its most recent history —
/// which is what a post-mortem wants.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    events: VecDeque<Stamped>,
    capacity: usize,
    seq: u64,
    dropped: u64,
}

impl RingBuffer {
    /// Creates a buffer holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            seq: 0,
            dropped: 0,
        }
    }

    /// Events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events dropped (oldest-first) because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Stamped> {
        self.events.iter()
    }

    /// Consumes the buffer into a vector, oldest first.
    #[must_use]
    pub fn into_vec(self) -> Vec<Stamped> {
        self.events.into()
    }
}

impl TraceSink for RingBuffer {
    fn record(&mut self, t_ns: u64, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Stamped {
            t_ns,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }
}

/// The per-run tracing handle: a ring buffer, a metrics registry, and the
/// modeled clock.
///
/// The clock advances only via [`Tracer::advance`], fed with
/// `CostCounter` *deltas* metered by the run loop. Accumulating deltas
/// (rather than pricing a cumulative counter) keeps the clock monotonic
/// across policy rebuilds, whose own counters restart from zero.
#[derive(Debug, Clone)]
pub struct Tracer {
    ns_weights: [f64; OPS.len()],
    clock: CostCounter,
    ring: RingBuffer,
    /// Run-scoped metrics; merged into the hub's registry on submit.
    pub metrics: MetricsRegistry,
}

impl Tracer {
    /// Creates a tracer with the given ring capacity and `COST_MODEL`
    /// per-op nanosecond weights ([`OPS`]-ordered).
    #[must_use]
    pub fn new(capacity: usize, ns_weights: [f64; OPS.len()]) -> Self {
        Tracer {
            ns_weights,
            clock: CostCounter::default(),
            ring: RingBuffer::new(capacity),
            metrics: MetricsRegistry::default(),
        }
    }

    /// Advances the modeled clock by a metered cost delta.
    pub fn advance(&mut self, delta: &CostCounter) {
        self.clock.add(delta);
    }

    /// Current modeled time: the accumulated cost priced by the weight
    /// vector, rounded to whole nanoseconds.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        let ns = self.clock.priced_ns(&self.ns_weights);
        if ns <= 0.0 {
            0
        } else {
            ns.round() as u64
        }
    }

    /// Prices an arbitrary cost delta without advancing the clock (e.g.
    /// a decision's own latency).
    #[must_use]
    pub fn price_ns(&self, delta: &CostCounter) -> u64 {
        let ns = delta.priced_ns(&self.ns_weights);
        if ns <= 0.0 {
            0
        } else {
            ns.round() as u64
        }
    }

    /// Records an event at the current modeled time.
    pub fn record(&mut self, event: TraceEvent) {
        let t = self.now_ns();
        self.ring.record(t, event);
    }

    /// Records an event at an explicit modeled time (for spans whose
    /// start predates the current clock).
    pub fn record_at(&mut self, t_ns: u64, event: TraceEvent) {
        self.ring.record(t_ns, event);
    }

    /// The held events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Stamped> {
        self.ring.iter()
    }

    /// Events dropped by the bounded ring.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Consumes the tracer into `(events, dropped, metrics)`.
    #[must_use]
    pub fn into_parts(self) -> (Vec<Stamped>, u64, MetricsRegistry) {
        let dropped = self.ring.dropped();
        (self.ring.into_vec(), dropped, self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = RingBuffer::new(2);
        for e in 0..5u64 {
            r.record(
                e,
                TraceEvent::Control {
                    epoch: e,
                    kind: "budget_step",
                    detail: String::new(),
                },
            );
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let held: Vec<u64> = r.iter().map(|s| s.t_ns).collect();
        assert_eq!(held, vec![3, 4]);
        // Sequence numbers keep counting through drops.
        assert_eq!(r.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn clock_is_monotonic_and_priced_in_ops_order() {
        let mut ns = [0.0f64; OPS.len()];
        ns[2] = 1.5; // rng_draw
        let mut t = Tracer::new(16, ns);
        assert_eq!(t.now_ns(), 0);
        let delta = CostCounter {
            rng_draws: 4,
            ..CostCounter::default()
        };
        t.advance(&delta);
        assert_eq!(t.now_ns(), 6);
        t.advance(&delta);
        assert_eq!(t.now_ns(), 12);
        assert_eq!(t.price_ns(&delta), 6);
    }
}
