//! Property tests for the bounded ring buffer: it never drops events
//! while under its configured capacity, and at capacity it drops exactly
//! the oldest ones, keeping the newest `capacity` in order.

use fastcap_trace::{RingBuffer, TraceEvent, TraceSink};
use proptest::prelude::*;

fn push_n(ring: &mut RingBuffer, n: u64) {
    for e in 0..n {
        ring.record(
            e,
            TraceEvent::Control {
                epoch: e,
                kind: "budget_step",
                detail: String::new(),
            },
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn never_drops_below_capacity(capacity in 1usize..512, n in 0u64..1024) {
        let mut ring = RingBuffer::new(capacity);
        push_n(&mut ring, n);
        let held = ring.len() as u64;
        // Everything fits until capacity; after that, drops account for
        // exactly the overflow.
        prop_assert_eq!(held, n.min(capacity as u64));
        prop_assert_eq!(ring.dropped(), n.saturating_sub(capacity as u64));
        if (n as usize) <= capacity {
            prop_assert_eq!(ring.dropped(), 0);
        }
    }

    #[test]
    fn keeps_the_newest_events_in_order(capacity in 1usize..64, n in 0u64..256) {
        let mut ring = RingBuffer::new(capacity);
        push_n(&mut ring, n);
        let first_kept = n.saturating_sub(capacity as u64);
        let stamps: Vec<u64> = ring.iter().map(|s| s.t_ns).collect();
        let want: Vec<u64> = (first_kept..n).collect();
        prop_assert_eq!(stamps, want);
        // Sequence numbers are the global record index, drops included.
        let seqs: Vec<u64> = ring.iter().map(|s| s.seq).collect();
        let want_seq: Vec<u64> = (first_kept..n).collect();
        prop_assert_eq!(seqs, want_seq);
    }
}
