//! Application profiles.
//!
//! An [`AppProfile`] captures everything the simulator needs to emulate one
//! SPEC-like application on one core: how often it misses the shared cache
//! (MPKI), how much writeback traffic it produces (WPKI), its compute CPI,
//! its DRAM row-buffer locality, its memory-level parallelism (used by the
//! idealized out-of-order mode of Sec. IV-B), and its phase behaviour.

use crate::phases::PhaseSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four workload classes of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Compute-intensive (`ILP*`).
    Ilp,
    /// Compute/memory balanced (`MID*`).
    Mid,
    /// Memory-intensive (`MEM*`).
    Mem,
    /// Mixed (`MIX*`) — one or two applications from each other class.
    Mix,
}

impl WorkloadClass {
    /// All classes, in the paper's presentation order.
    pub const ALL: [WorkloadClass; 4] = [
        WorkloadClass::Ilp,
        WorkloadClass::Mid,
        WorkloadClass::Mem,
        WorkloadClass::Mix,
    ];
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkloadClass::Ilp => "ILP",
            WorkloadClass::Mid => "MID",
            WorkloadClass::Mem => "MEM",
            WorkloadClass::Mix => "MIX",
        };
        f.write_str(s)
    }
}

/// A synthetic stand-in for one SPEC application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// SPEC benchmark name (e.g. `"swim"`).
    pub name: String,
    /// Core-only cycles per instruction at any frequency (single-issue
    /// in-order pipeline; memory stalls excluded).
    pub base_cpi: f64,
    /// Last-level cache misses per kilo-instruction in the current mix
    /// context.
    pub mpki: f64,
    /// Writebacks per kilo-instruction in the current mix context.
    pub wpki: f64,
    /// Probability a DRAM access hits an open row.
    pub row_hit_ratio: f64,
    /// Average overlappable misses per stall window in the idealized
    /// out-of-order mode (1.0 = fully blocking, in-order behaviour).
    pub mlp: f64,
    /// Phase behaviour.
    pub phase: PhaseSpec,
}

impl AppProfile {
    /// Validates physical plausibility of the profile.
    ///
    /// Returns a human-readable complaint rather than an error type: this
    /// crate is pure data, and callers decide whether violations are fatal.
    pub fn check(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("profile name is empty".into());
        }
        if !(self.base_cpi > 0.0 && self.base_cpi.is_finite()) {
            return Err(format!("{}: base_cpi must be positive", self.name));
        }
        if !(self.mpki > 0.0 && self.mpki.is_finite()) {
            return Err(format!("{}: mpki must be positive", self.name));
        }
        if !(self.wpki >= 0.0 && self.wpki.is_finite()) {
            return Err(format!("{}: wpki must be >= 0", self.name));
        }
        if self.wpki > self.mpki {
            return Err(format!(
                "{}: wpki ({}) cannot exceed mpki ({}) — writebacks are a subset of evictions",
                self.name, self.wpki, self.mpki
            ));
        }
        if !(0.0..=1.0).contains(&self.row_hit_ratio) {
            return Err(format!("{}: row_hit_ratio must be in [0,1]", self.name));
        }
        if !(self.mlp >= 1.0 && self.mlp <= 128.0) {
            return Err(format!("{}: mlp must be in [1,128]", self.name));
        }
        Ok(())
    }

    /// Average instructions between two last-level misses
    /// (`1000 / MPKI`).
    #[inline]
    pub fn instructions_per_miss(&self) -> f64 {
        1000.0 / self.mpki
    }

    /// Probability that a miss is accompanied by a dirty writeback
    /// (`WPKI / MPKI`).
    #[inline]
    pub fn writeback_probability(&self) -> f64 {
        (self.wpki / self.mpki).clamp(0.0, 1.0)
    }

    /// Returns this profile with mix-context MPKI/WPKI overrides.
    #[must_use]
    pub fn with_memory_intensity(mut self, mpki: f64, wpki: f64) -> Self {
        self.mpki = mpki;
        self.wpki = wpki;
        self
    }
}

/// One application pinned to one core: a profile plus its copy index (used
/// to de-phase the `N/4` copies of Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppInstance {
    /// The (possibly context-adjusted) profile.
    pub profile: AppProfile,
    /// Which copy of the application this is (0-based).
    pub copy: usize,
}

impl AppInstance {
    /// Creates a copy of `profile` with its phase offset rotated so distinct
    /// copies are not synchronized.
    pub fn new(profile: &AppProfile, copy: usize) -> Self {
        // Golden-ratio de-phasing: well spread for any copy count.
        const GOLDEN: f64 = 0.618_033_988_749_894_9;
        let mut p = profile.clone();
        p.phase = p.phase.with_offset(p.phase.offset + copy as f64 * GOLDEN);
        Self { profile: p, copy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> AppProfile {
        AppProfile {
            name: "swim".into(),
            base_cpi: 1.2,
            mpki: 24.0,
            wpki: 10.0,
            row_hit_ratio: 0.8,
            mlp: 6.0,
            phase: PhaseSpec::strong(0.1),
        }
    }

    #[test]
    fn valid_profile_checks_out() {
        assert!(profile().check().is_ok());
    }

    #[test]
    fn check_catches_violations() {
        let mut p = profile();
        p.name.clear();
        assert!(p.check().is_err());

        let mut p = profile();
        p.base_cpi = 0.0;
        assert!(p.check().is_err());

        let mut p = profile();
        p.mpki = -1.0;
        assert!(p.check().is_err());

        let mut p = profile();
        p.wpki = p.mpki + 1.0;
        assert!(p.check().is_err(), "wpki > mpki must fail");

        let mut p = profile();
        p.row_hit_ratio = 1.5;
        assert!(p.check().is_err());

        let mut p = profile();
        p.mlp = 0.5;
        assert!(p.check().is_err());
    }

    #[test]
    fn derived_quantities() {
        let p = profile();
        assert!((p.instructions_per_miss() - 1000.0 / 24.0).abs() < 1e-9);
        assert!((p.writeback_probability() - 10.0 / 24.0).abs() < 1e-9);
    }

    #[test]
    fn intensity_override() {
        let p = profile().with_memory_intensity(8.0, 3.0);
        assert_eq!(p.mpki, 8.0);
        assert_eq!(p.wpki, 3.0);
        assert_eq!(p.name, "swim");
    }

    #[test]
    fn instances_are_dephased() {
        let p = profile();
        let a = AppInstance::new(&p, 0);
        let b = AppInstance::new(&p, 1);
        assert_ne!(a.profile.phase.offset, b.profile.phase.offset);
        assert_eq!(a.copy, 0);
        assert_eq!(b.copy, 1);
    }

    #[test]
    fn class_display() {
        assert_eq!(WorkloadClass::Ilp.to_string(), "ILP");
        assert_eq!(WorkloadClass::Mix.to_string(), "MIX");
        assert_eq!(WorkloadClass::ALL.len(), 4);
    }
}
