//! # fastcap-workloads
//!
//! Synthetic SPEC-like application profiles and the sixteen workload mixes
//! from Table III of the FastCap paper (ISPASS 2016).
//!
//! The paper drives its evaluation with SPEC 2000/2006 applications grouped
//! into four classes — compute-intensive (**ILP**), compute/memory balanced
//! (**MID**), memory-intensive (**MEM**) and mixed (**MIX**) — running `N/4`
//! copies of each of four applications to fill `N` cores. We do not have
//! SPEC binaries or traces, so each named application is replaced by a
//! *profile*: base CPI, misses/writebacks per kilo-instruction, DRAM
//! row-buffer hit ratio, memory-level parallelism (for the out-of-order
//! mode), and a deterministic phase model that modulates memory intensity
//! over time (so the controller sees realistic behaviour changes — Fig. 4,
//! 7, 8).
//!
//! **Fidelity note:** Table III reports MPKI/WPKI *per mix*, and the same
//! application appears with very different memory intensity in different
//! mixes (e.g. `applu` in MEM1 vs. MIX1) because the shared L2 is contended
//! differently. We therefore specify MPKI/WPKI per `(application, mix)` pair
//! such that every mix's mean MPKI and WPKI equal Table III exactly; a unit
//! test in [`mixes`] asserts this.
//!
//! ```
//! use fastcap_workloads::{mixes, WorkloadClass};
//!
//! let mem1 = mixes::by_name("MEM1").unwrap();
//! assert_eq!(mem1.class, WorkloadClass::Mem);
//! assert!((mem1.mean_mpki() - 18.22).abs() < 0.005);
//!
//! // Fill a 16-core machine: N/4 copies of each of the 4 applications.
//! let apps = mem1.instantiate(16).unwrap();
//! assert_eq!(apps.len(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod mixes;
pub mod phases;
pub mod spec;

pub use app::{AppInstance, AppProfile, WorkloadClass};
pub use mixes::{all, by_class, by_name, WorkloadSpec};
pub use phases::PhaseSpec;
