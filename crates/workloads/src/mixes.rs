//! The sixteen workload mixes of Table III.
//!
//! Each mix names four applications and the mix-context MPKI/WPKI each
//! exhibits there (the same application is more or less memory-intensive
//! depending on how contended the shared L2 is — see the crate docs). The
//! per-mix *means* equal Table III's MPKI and WPKI columns exactly; the
//! `table_iii_means_match` test locks this in.

use crate::app::{AppInstance, AppProfile, WorkloadClass};
use crate::spec;
use serde::{Deserialize, Serialize};

/// `(app, mpki, wpki)` for the four members of each mix, plus the Table III
/// aggregate `(mpki, wpki)` the mix must average to.
struct MixDef {
    name: &'static str,
    class: WorkloadClass,
    apps: [(&'static str, f64, f64); 4],
    // Read by the `table_iii_means_match` lock-in test.
    #[cfg_attr(not(test), allow(dead_code))]
    table_mpki: f64,
    #[cfg_attr(not(test), allow(dead_code))]
    table_wpki: f64,
}

const MIXES: &[MixDef] = &[
    MixDef {
        name: "ILP1",
        class: WorkloadClass::Ilp,
        apps: [
            ("vortex", 0.50, 0.08),
            ("gcc", 0.40, 0.07),
            ("sixtrack", 0.32, 0.05),
            ("mesa", 0.26, 0.04),
        ],
        table_mpki: 0.37,
        table_wpki: 0.06,
    },
    MixDef {
        name: "ILP2",
        class: WorkloadClass::Ilp,
        apps: [
            ("perlbmk", 0.28, 0.05),
            ("crafty", 0.22, 0.04),
            ("gzip", 0.08, 0.02),
            ("eon", 0.06, 0.01),
        ],
        table_mpki: 0.16,
        table_wpki: 0.03,
    },
    MixDef {
        name: "ILP3",
        class: WorkloadClass::Ilp,
        apps: [
            ("sixtrack", 0.34, 0.09),
            ("mesa", 0.28, 0.08),
            ("perlbmk", 0.26, 0.06),
            ("crafty", 0.20, 0.05),
        ],
        table_mpki: 0.27,
        table_wpki: 0.07,
    },
    MixDef {
        name: "ILP4",
        class: WorkloadClass::Ilp,
        apps: [
            ("vortex", 0.45, 0.06),
            ("gcc", 0.35, 0.05),
            ("gzip", 0.12, 0.03),
            ("eon", 0.08, 0.02),
        ],
        table_mpki: 0.25,
        table_wpki: 0.04,
    },
    MixDef {
        name: "MID1",
        class: WorkloadClass::Mid,
        apps: [
            ("ammp", 2.10, 0.90),
            ("gap", 1.50, 0.60),
            ("wupwise", 2.20, 0.80),
            ("vpr", 1.24, 0.66),
        ],
        table_mpki: 1.76,
        table_wpki: 0.74,
    },
    MixDef {
        name: "MID2",
        class: WorkloadClass::Mid,
        apps: [
            ("astar", 3.10, 1.10),
            ("parser", 2.40, 0.80),
            ("twolf", 2.90, 1.00),
            ("facerec", 2.04, 0.66),
        ],
        table_mpki: 2.61,
        table_wpki: 0.89,
    },
    MixDef {
        name: "MID3",
        class: WorkloadClass::Mid,
        apps: [
            ("apsi", 1.30, 0.80),
            ("bzip2", 0.90, 0.50),
            ("ammp", 1.10, 0.60),
            ("gap", 0.70, 0.50),
        ],
        table_mpki: 1.00,
        table_wpki: 0.60,
    },
    MixDef {
        name: "MID4",
        class: WorkloadClass::Mid,
        apps: [
            ("wupwise", 2.50, 1.10),
            ("vpr", 1.60, 0.70),
            ("astar", 2.70, 1.05),
            ("parser", 1.72, 0.75),
        ],
        table_mpki: 2.13,
        table_wpki: 0.90,
    },
    MixDef {
        name: "MEM1",
        class: WorkloadClass::Mem,
        apps: [
            ("swim", 24.00, 10.00),
            ("applu", 20.00, 9.00),
            ("galgel", 14.00, 6.00),
            ("equake", 14.88, 6.68),
        ],
        table_mpki: 18.22,
        table_wpki: 7.92,
    },
    MixDef {
        name: "MEM2",
        class: WorkloadClass::Mem,
        apps: [
            ("art", 9.00, 3.00),
            ("milc", 8.00, 2.60),
            ("mgrid", 7.50, 2.40),
            ("fma3d", 6.50, 2.12),
        ],
        table_mpki: 7.75,
        table_wpki: 2.53,
    },
    MixDef {
        name: "MEM3",
        class: WorkloadClass::Mem,
        apps: [
            ("fma3d", 7.00, 2.30),
            ("mgrid", 8.00, 2.50),
            ("galgel", 8.50, 2.70),
            ("equake", 8.22, 2.70),
        ],
        table_mpki: 7.93,
        table_wpki: 2.55,
    },
    MixDef {
        name: "MEM4",
        class: WorkloadClass::Mem,
        apps: [
            ("swim", 22.00, 9.50),
            ("applu", 18.00, 8.50),
            ("sphinx3", 12.00, 6.50),
            ("lucas", 8.28, 4.74),
        ],
        table_mpki: 15.07,
        table_wpki: 7.31,
    },
    MixDef {
        name: "MIX1",
        class: WorkloadClass::Mix,
        apps: [
            ("applu", 8.00, 7.50),
            ("hmmer", 1.50, 1.20),
            ("gap", 1.20, 0.90),
            ("gzip", 1.02, 0.64),
        ],
        table_mpki: 2.93,
        table_wpki: 2.56,
    },
    MixDef {
        name: "MIX2",
        class: WorkloadClass::Mix,
        apps: [
            ("milc", 7.00, 2.20),
            ("gobmk", 1.40, 0.50),
            ("facerec", 1.50, 0.40),
            ("perlbmk", 0.30, 0.10),
        ],
        table_mpki: 2.55,
        table_wpki: 0.80,
    },
    MixDef {
        name: "MIX3",
        class: WorkloadClass::Mix,
        apps: [
            ("equake", 6.50, 1.00),
            ("ammp", 1.80, 0.30),
            ("sjeng", 0.80, 0.16),
            ("crafty", 0.26, 0.10),
        ],
        table_mpki: 2.34,
        table_wpki: 0.39,
    },
    MixDef {
        name: "MIX4",
        class: WorkloadClass::Mix,
        apps: [
            ("swim", 9.50, 3.40),
            ("ammp", 2.20, 0.70),
            ("twolf", 2.30, 0.50),
            ("sixtrack", 0.48, 0.20),
        ],
        table_mpki: 3.62,
        table_wpki: 1.20,
    },
];

/// A fully resolved workload: four context-adjusted application profiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Mix name (e.g. `"MEM1"`).
    pub name: String,
    /// Workload class.
    pub class: WorkloadClass,
    /// The four member applications, with mix-context MPKI/WPKI applied.
    pub apps: Vec<AppProfile>,
}

impl WorkloadSpec {
    /// Mean MPKI across the four members (the Table III column).
    pub fn mean_mpki(&self) -> f64 {
        self.apps.iter().map(|a| a.mpki).sum::<f64>() / self.apps.len() as f64
    }

    /// Mean WPKI across the four members (the Table III column).
    pub fn mean_wpki(&self) -> f64 {
        self.apps.iter().map(|a| a.wpki).sum::<f64>() / self.apps.len() as f64
    }

    /// Expands the mix onto `n_cores` cores: `n_cores/4` de-phased copies of
    /// each member, interleaved so copy `k` of each app are adjacent
    /// (matching the paper's "`×N/4` each").
    ///
    /// # Errors
    ///
    /// Returns a description when `n_cores` is not a positive multiple of 4.
    pub fn instantiate(&self, n_cores: usize) -> Result<Vec<AppInstance>, String> {
        if n_cores == 0 || !n_cores.is_multiple_of(self.apps.len()) {
            return Err(format!(
                "{}: core count {} is not a positive multiple of {}",
                self.name,
                n_cores,
                self.apps.len()
            ));
        }
        let copies = n_cores / self.apps.len();
        let mut out = Vec::with_capacity(n_cores);
        for copy in 0..copies {
            for app in &self.apps {
                out.push(AppInstance::new(app, copy));
            }
        }
        Ok(out)
    }
}

fn resolve(def: &MixDef) -> WorkloadSpec {
    let apps = def
        .apps
        .iter()
        .map(|&(name, mpki, wpki)| {
            spec::base(name)
                .unwrap_or_else(|| panic!("Table III names unknown app {name}"))
                .with_memory_intensity(mpki, wpki)
        })
        .collect();
    WorkloadSpec {
        name: def.name.to_string(),
        class: def.class,
        apps,
    }
}

/// All sixteen mixes, in Table III order.
pub fn all() -> Vec<WorkloadSpec> {
    MIXES.iter().map(resolve).collect()
}

/// A mix by name (case-insensitive), if it exists.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    MIXES
        .iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
        .map(resolve)
}

/// The four mixes of one class, in Table III order.
pub fn by_class(class: WorkloadClass) -> Vec<WorkloadSpec> {
    MIXES
        .iter()
        .filter(|m| m.class == class)
        .map(resolve)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_mixes_four_per_class() {
        assert_eq!(all().len(), 16);
        for class in WorkloadClass::ALL {
            assert_eq!(by_class(class).len(), 4, "{class}");
        }
    }

    #[test]
    fn table_iii_means_match() {
        for def in MIXES {
            let w = resolve(def);
            assert!(
                (w.mean_mpki() - def.table_mpki).abs() < 5e-3,
                "{}: mean MPKI {} vs Table III {}",
                def.name,
                w.mean_mpki(),
                def.table_mpki
            );
            assert!(
                (w.mean_wpki() - def.table_wpki).abs() < 5e-3,
                "{}: mean WPKI {} vs Table III {}",
                def.name,
                w.mean_wpki(),
                def.table_wpki
            );
        }
    }

    #[test]
    fn all_mix_profiles_are_valid() {
        for w in all() {
            for a in &w.apps {
                a.check().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            }
        }
    }

    #[test]
    fn table_iii_membership_matches_paper() {
        let names = |mix: &str| -> Vec<String> {
            by_name(mix)
                .unwrap()
                .apps
                .iter()
                .map(|a| a.name.clone())
                .collect()
        };
        assert_eq!(names("ILP1"), ["vortex", "gcc", "sixtrack", "mesa"]);
        assert_eq!(names("MID2"), ["astar", "parser", "twolf", "facerec"]);
        assert_eq!(names("MEM4"), ["swim", "applu", "sphinx3", "lucas"]);
        assert_eq!(names("MIX3"), ["equake", "ammp", "sjeng", "crafty"]);
    }

    #[test]
    fn by_name_is_case_insensitive_and_total() {
        assert!(by_name("mem1").is_some());
        assert!(by_name("MeM1").is_some());
        assert!(by_name("MEM5").is_none());
    }

    #[test]
    fn instantiate_shapes() {
        let w = by_name("MIX4").unwrap();
        for n in [4usize, 16, 32, 64] {
            let apps = w.instantiate(n).unwrap();
            assert_eq!(apps.len(), n);
            // Each member appears exactly n/4 times.
            for member in &w.apps {
                let count = apps
                    .iter()
                    .filter(|a| a.profile.name == member.name)
                    .count();
                assert_eq!(count, n / 4, "{}", member.name);
            }
        }
        assert!(w.instantiate(0).is_err());
        assert!(w.instantiate(6).is_err());
    }

    #[test]
    fn copies_are_dephased() {
        let w = by_name("MEM1").unwrap();
        let apps = w.instantiate(16).unwrap();
        // Copies 0 and 1 of swim must have different phase offsets.
        let swims: Vec<_> = apps.iter().filter(|a| a.profile.name == "swim").collect();
        assert_eq!(swims.len(), 4);
        assert_ne!(swims[0].profile.phase.offset, swims[1].profile.phase.offset);
    }

    #[test]
    fn classes_order_by_memory_intensity() {
        let mean = |c: WorkloadClass| {
            let ws = by_class(c);
            ws.iter().map(|w| w.mean_mpki()).sum::<f64>() / ws.len() as f64
        };
        assert!(mean(WorkloadClass::Ilp) < mean(WorkloadClass::Mid));
        assert!(mean(WorkloadClass::Mid) < mean(WorkloadClass::Mem));
        assert!(mean(WorkloadClass::Mix) < mean(WorkloadClass::Mem));
    }
}
