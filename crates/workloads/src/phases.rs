//! Deterministic application phase behaviour.
//!
//! Real applications move through phases: their memory intensity and IPC
//! drift over time, which is precisely what forces the capping controller to
//! re-balance power between cores and memory every epoch (Fig. 4). We model
//! phases as a sum of two sinusoids (a slow envelope and a faster ripple)
//! plus an optional square-wave "mode switch", all deterministic functions
//! of the epoch index — so every simulation is reproducible and two copies
//! of the same application can be de-phased via their `offset`.

use serde::{Deserialize, Serialize};

/// Deterministic phase model for one application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Period of the slow envelope, in epochs.
    pub period_epochs: f64,
    /// Amplitude of the slow envelope as a fraction of the base value
    /// (0.0 = steady application).
    pub amplitude: f64,
    /// Period of the fast ripple, in epochs.
    pub ripple_period_epochs: f64,
    /// Amplitude of the fast ripple (fraction of base).
    pub ripple_amplitude: f64,
    /// Phase offset in `[0, 1)` rotations — distinct copies of an
    /// application should get distinct offsets.
    pub offset: f64,
    /// If `> 0`, every `mode_period_epochs` the application flips between a
    /// high and a low mode, scaling intensity by `1 ± mode_amplitude`.
    pub mode_period_epochs: f64,
    /// Amplitude of the mode switch (fraction of base).
    pub mode_amplitude: f64,
}

impl PhaseSpec {
    /// A perfectly steady application (no phase behaviour).
    pub const STEADY: Self = Self {
        period_epochs: 1.0,
        amplitude: 0.0,
        ripple_period_epochs: 1.0,
        ripple_amplitude: 0.0,
        offset: 0.0,
        mode_period_epochs: 0.0,
        mode_amplitude: 0.0,
    };

    /// A gentle drift typical of compute-bound codes.
    pub fn gentle(offset: f64) -> Self {
        Self {
            period_epochs: 60.0,
            amplitude: 0.10,
            ripple_period_epochs: 7.0,
            ripple_amplitude: 0.04,
            offset,
            mode_period_epochs: 0.0,
            mode_amplitude: 0.0,
        }
    }

    /// Pronounced phases typical of memory-streaming codes that alternate
    /// between compute and sweep phases.
    pub fn strong(offset: f64) -> Self {
        Self {
            period_epochs: 40.0,
            amplitude: 0.30,
            ripple_period_epochs: 9.0,
            ripple_amplitude: 0.08,
            offset,
            mode_period_epochs: 90.0,
            mode_amplitude: 0.15,
        }
    }

    /// Returns a copy with a different offset (used to de-phase the `N/4`
    /// copies of an application).
    #[must_use]
    pub fn with_offset(mut self, offset: f64) -> Self {
        self.offset = offset.rem_euclid(1.0);
        self
    }

    /// Intensity multiplier at a (fractional) epoch index.
    ///
    /// Always positive; equals 1.0 on average for zero-offset sinusoids and
    /// is clamped to `[0.05, 3.0]` as a physical sanity bound.
    pub fn intensity(&self, epoch: f64) -> f64 {
        use std::f64::consts::TAU;
        let mut m = 1.0;
        if self.amplitude != 0.0 && self.period_epochs > 0.0 {
            m += self.amplitude * (TAU * (epoch / self.period_epochs + self.offset)).sin();
        }
        if self.ripple_amplitude != 0.0 && self.ripple_period_epochs > 0.0 {
            m += self.ripple_amplitude
                * (TAU * (epoch / self.ripple_period_epochs + 2.0 * self.offset)).sin();
        }
        if self.mode_amplitude != 0.0 && self.mode_period_epochs > 0.0 {
            let half = ((epoch + self.offset * self.mode_period_epochs) / self.mode_period_epochs)
                .floor() as i64;
            m += if half % 2 == 0 {
                self.mode_amplitude
            } else {
                -self.mode_amplitude
            };
        }
        m.clamp(0.05, 3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_is_constant_one() {
        for e in 0..100 {
            assert!((PhaseSpec::STEADY.intensity(e as f64) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn intensity_is_always_positive_and_bounded() {
        let p = PhaseSpec::strong(0.3);
        for e in 0..500 {
            let m = p.intensity(e as f64);
            assert!((0.05..=3.0).contains(&m), "epoch {e}: {m}");
        }
    }

    #[test]
    fn intensity_actually_varies() {
        let p = PhaseSpec::strong(0.0);
        let vals: Vec<f64> = (0..80).map(|e| p.intensity(e as f64)).collect();
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.3, "range {min}..{max} too flat");
    }

    #[test]
    fn gentle_varies_less_than_strong() {
        let range = |p: PhaseSpec| {
            let v: Vec<f64> = (0..200).map(|e| p.intensity(e as f64)).collect();
            v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(range(PhaseSpec::gentle(0.0)) < range(PhaseSpec::strong(0.0)));
    }

    #[test]
    fn offsets_dephase_copies() {
        let a = PhaseSpec::strong(0.0);
        let b = PhaseSpec::strong(0.0).with_offset(0.5);
        // At some epoch the two copies must differ noticeably.
        let diff = (0..50)
            .map(|e| (a.intensity(e as f64) - b.intensity(e as f64)).abs())
            .fold(f64::MIN, f64::max);
        assert!(diff > 0.2, "max diff {diff}");
    }

    #[test]
    fn with_offset_wraps() {
        let p = PhaseSpec::gentle(0.0).with_offset(1.25);
        assert!((p.offset - 0.25).abs() < 1e-12);
        let p = PhaseSpec::gentle(0.0).with_offset(-0.25);
        assert!((p.offset - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mode_switch_flips() {
        let p = PhaseSpec {
            period_epochs: 1.0,
            amplitude: 0.0,
            ripple_period_epochs: 1.0,
            ripple_amplitude: 0.0,
            offset: 0.0,
            mode_period_epochs: 10.0,
            mode_amplitude: 0.2,
        };
        assert!((p.intensity(5.0) - 1.2).abs() < 1e-12);
        assert!((p.intensity(15.0) - 0.8).abs() < 1e-12);
    }
}
