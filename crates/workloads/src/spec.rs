//! Base profiles for the SPEC 2000/2006 applications named in Table III.
//!
//! Values are *synthetic but plausible*: base CPI near 1 (single-issue
//! in-order pipeline), row-buffer hit ratios higher for streaming codes
//! (`swim`, `applu`, `mgrid`) than for pointer-chasing ones (`art`,
//! `gobmk`), and memory-level parallelism (MLP) higher for the
//! memory-streaming floating-point codes. The default MPKI/WPKI here are
//! only used when an application is run outside a Table III mix; the mixes
//! in [`crate::mixes`] override them per context (see the crate docs for
//! why).

use crate::app::AppProfile;
use crate::phases::PhaseSpec;

/// Per-application base data: `(name, base_cpi, mpki, wpki, row_hit, mlp,
/// strong_phases)`.
const BASE: &[(&str, f64, f64, f64, f64, f64, bool)] = &[
    // -- compute-intensive (ILP) ------------------------------------------
    ("vortex", 1.15, 0.50, 0.08, 0.65, 1.5, false),
    ("gcc", 1.25, 0.40, 0.07, 0.70, 1.6, false),
    ("sixtrack", 1.05, 0.33, 0.05, 0.75, 1.3, false),
    ("mesa", 1.10, 0.27, 0.04, 0.72, 1.4, false),
    ("perlbmk", 1.20, 0.28, 0.05, 0.68, 1.5, false),
    ("crafty", 1.10, 0.22, 0.04, 0.66, 1.4, false),
    ("gzip", 1.15, 0.10, 0.03, 0.70, 1.3, false),
    ("eon", 1.05, 0.07, 0.02, 0.74, 1.2, false),
    ("hmmer", 1.00, 1.50, 1.20, 0.80, 2.0, false),
    ("gobmk", 1.30, 1.40, 0.50, 0.60, 1.5, false),
    ("sjeng", 1.25, 0.80, 0.16, 0.62, 1.5, false),
    // -- balanced (MID) ----------------------------------------------------
    ("ammp", 1.20, 1.80, 0.60, 0.68, 2.5, false),
    ("gap", 1.15, 1.20, 0.60, 0.70, 2.2, false),
    ("wupwise", 1.10, 2.30, 0.90, 0.75, 3.0, false),
    ("vpr", 1.25, 1.40, 0.68, 0.62, 2.0, false),
    ("astar", 1.30, 2.90, 1.07, 0.58, 2.2, false),
    ("parser", 1.25, 2.00, 0.78, 0.60, 2.0, false),
    ("twolf", 1.30, 2.60, 0.75, 0.55, 2.0, false),
    ("facerec", 1.15, 1.80, 0.53, 0.72, 2.8, false),
    ("apsi", 1.20, 1.30, 0.80, 0.70, 2.5, false),
    ("bzip2", 1.15, 0.90, 0.50, 0.73, 2.0, false),
    // -- memory-intensive (MEM) --------------------------------------------
    ("swim", 1.10, 23.00, 9.70, 0.85, 6.0, true),
    ("applu", 1.15, 19.00, 8.70, 0.82, 5.0, true),
    ("galgel", 1.20, 12.00, 5.00, 0.75, 4.0, true),
    ("equake", 1.25, 11.00, 5.00, 0.70, 4.0, true),
    ("art", 1.10, 9.00, 3.00, 0.55, 5.0, true),
    ("milc", 1.15, 7.70, 2.40, 0.60, 4.0, true),
    ("mgrid", 1.10, 7.80, 2.45, 0.80, 5.0, true),
    ("fma3d", 1.20, 6.80, 2.20, 0.72, 4.0, true),
    ("sphinx3", 1.15, 12.00, 6.50, 0.70, 4.0, true),
    ("lucas", 1.10, 8.30, 4.70, 0.78, 4.0, true),
];

/// All application names with base profiles.
pub fn all_names() -> Vec<&'static str> {
    BASE.iter().map(|e| e.0).collect()
}

/// The base profile for a named SPEC application, if known.
pub fn base(name: &str) -> Option<AppProfile> {
    BASE.iter().position(|e| e.0 == name).map(|idx| {
        let (n, cpi, mpki, wpki, rh, mlp, strong) = BASE[idx];
        // De-phase different applications with a stable per-app offset.
        let offset = idx as f64 * 0.137;
        AppProfile {
            name: n.to_string(),
            base_cpi: cpi,
            mpki,
            wpki,
            row_hit_ratio: rh,
            mlp,
            phase: if strong {
                PhaseSpec::strong(offset)
            } else {
                PhaseSpec::gentle(offset)
            },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_base_profiles_are_physically_valid() {
        for name in all_names() {
            let p = base(name).unwrap();
            p.check().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn covers_every_table_iii_application() {
        // The union of all application names appearing in Table III.
        let needed = [
            "vortex", "gcc", "sixtrack", "mesa", "perlbmk", "crafty", "gzip", "eon", "ammp", "gap",
            "wupwise", "vpr", "astar", "parser", "twolf", "facerec", "apsi", "bzip2", "swim",
            "applu", "galgel", "equake", "art", "milc", "mgrid", "fma3d", "sphinx3", "lucas",
            "hmmer", "gobmk", "sjeng",
        ];
        for n in needed {
            assert!(base(n).is_some(), "missing base profile for {n}");
        }
        assert_eq!(all_names().len(), needed.len());
    }

    #[test]
    fn unknown_app_returns_none() {
        assert!(base("doom").is_none());
        assert!(base("").is_none());
    }

    #[test]
    fn memory_apps_have_higher_mlp_than_ilp_apps() {
        let swim = base("swim").unwrap();
        let eon = base("eon").unwrap();
        assert!(swim.mlp > eon.mlp);
        assert!(swim.mpki > 10.0 * eon.mpki);
    }

    #[test]
    fn distinct_apps_have_distinct_phase_offsets() {
        let a = base("swim").unwrap();
        let b = base("applu").unwrap();
        assert_ne!(a.phase.offset, b.phase.offset);
    }
}
