//! Property-based tests for workload profiles and phase models.

use fastcap_workloads::{mixes, spec, AppInstance, PhaseSpec};
use proptest::prelude::*;

proptest! {
    /// Phase intensity is always within its documented clamp, for any
    /// parameterization and any epoch.
    #[test]
    fn phase_intensity_bounded(
        period in 0.1_f64..200.0,
        amp in 0.0_f64..2.0,
        rperiod in 0.1_f64..50.0,
        ramp in 0.0_f64..1.0,
        offset in -3.0_f64..3.0,
        mperiod in 0.0_f64..200.0,
        mamp in 0.0_f64..1.0,
        epoch in 0.0_f64..10_000.0,
    ) {
        let p = PhaseSpec {
            period_epochs: period,
            amplitude: amp,
            ripple_period_epochs: rperiod,
            ripple_amplitude: ramp,
            offset,
            mode_period_epochs: mperiod,
            mode_amplitude: mamp,
        };
        let m = p.intensity(epoch);
        prop_assert!((0.05..=3.0).contains(&m), "intensity {m}");
    }

    /// De-phased copies keep profiles physically valid.
    #[test]
    fn instances_stay_valid(copy in 0usize..64, app_idx in 0usize..31) {
        let names = spec::all_names();
        let name = names[app_idx % names.len()];
        let base = spec::base(name).expect("known app");
        let inst = AppInstance::new(&base, copy);
        prop_assert!(inst.profile.check().is_ok());
        prop_assert!((0.0..1.0).contains(&inst.profile.phase.offset));
    }

    /// Instantiation produces exactly n copies with the class invariant
    /// mpki >= wpki preserved.
    #[test]
    fn instantiation_shape(k in 1usize..17) {
        let n = 4 * k;
        for w in mixes::all() {
            let apps = w.instantiate(n).expect("multiple of 4");
            prop_assert_eq!(apps.len(), n);
            for a in &apps {
                prop_assert!(a.profile.wpki <= a.profile.mpki + 1e-12,
                    "{}: wpki > mpki", a.profile.name);
            }
        }
    }
}

/// The long-run mean intensity of any base profile's phase model stays
/// near 1 (phases modulate, they do not bias, memory intensity).
#[test]
fn phase_mean_is_near_one() {
    for name in spec::all_names() {
        let p = spec::base(name).unwrap().phase;
        let mean: f64 = (0..2000).map(|e| p.intensity(e as f64)).sum::<f64>() / 2000.0;
        assert!(
            (mean - 1.0).abs() < 0.08,
            "{name}: long-run phase mean {mean}"
        );
    }
}
