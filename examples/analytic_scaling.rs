//! Large-N capping with the analytic backend: close the FastCap loop on
//! 16–256 cores in well under a second.
//!
//! The discrete-event simulator is the fidelity reference; the analytic
//! (approximate-MVA) backend trades stochastic detail for `O(N)` epochs,
//! which makes many-core sweeps interactive. Both share the power models
//! and the policy interface, so this is the same controller you saw in
//! `capping_server.rs`, just on a faster substrate.
//!
//! ```sh
//! cargo run --release --example analytic_scaling
//! ```

use fastcap::policies::{CappingPolicy, FastCapPolicy};
use fastcap::sim::{AnalyticServer, SimConfig};
use fastcap::workloads::mixes;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mix = mixes::by_name("MIX2").expect("MIX2 exists");
    println!("closed-loop FastCap on MIX2, B = 60%, analytic backend\n");
    println!("cores   budget(W)  avg power(W)  used%   avg degr  worst  wall(ms)");

    for n in [16usize, 32, 64, 128, 256] {
        let start = Instant::now();
        let cfg = SimConfig::ispass(n)?.with_meter_noise(0.0);
        let ctl_cfg = cfg.controller_config(0.6)?;
        let budget = ctl_cfg.budget();

        let mut baseline = AnalyticServer::for_workload(cfg.clone(), &mix, 11)?;
        let base = baseline.run(40, |_| None);

        let mut policy = FastCapPolicy::new(ctl_cfg)?;
        let mut server = AnalyticServer::for_workload(cfg, &mix, 11)?;
        let run = server.run(40, |obs| policy.decide(obs).ok());

        let rep = run.fairness_vs(&base, 5)?;
        println!(
            "{n:5}  {:9.1}  {:12.1}  {:5.1}%  {:8.3}  {:5.3}  {:8.1}",
            budget.get(),
            run.avg_power(5).get(),
            100.0 * run.avg_power(5).get() / budget.get(),
            rep.average,
            rep.worst,
            start.elapsed().as_secs_f64() * 1e3,
        );
    }
    println!("\n(the same sweep on the discrete-event backend takes minutes to hours)");
    Ok(())
}
