//! Power/performance frontier: sweep the budget fraction and watch FastCap
//! trade performance for power, with fairness intact at every point.
//!
//! ```sh
//! cargo run --release --example budget_sweep -- [MID2]
//! ```

use fastcap::policies::{CappingPolicy, FastCapPolicy};
use fastcap::sim::{Server, SimConfig};
use fastcap::workloads::mixes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mix_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "MID2".to_string());
    let mix = mixes::by_name(&mix_name).ok_or_else(|| format!("unknown workload {mix_name}"))?;
    let cfg = SimConfig::ispass(16)?.with_time_dilation(100.0);
    let epochs = 40;
    let seed = 5;

    let mut baseline_server = Server::for_workload(cfg.clone(), &mix, seed)?;
    let baseline = baseline_server.run(epochs, |_| None);
    println!(
        "workload {mix_name}; uncapped draw {} of {} peak",
        baseline.avg_power(5),
        cfg.peak_power
    );
    println!("\nbudget  power(W)  used%   avg-degr  worst-degr");

    for pct in [40u32, 50, 60, 70, 80, 90, 100] {
        let b = f64::from(pct) / 100.0;
        let ctl_cfg = cfg.controller_config(b)?;
        let budget = ctl_cfg.budget();
        let mut policy = FastCapPolicy::new(ctl_cfg)?;
        let mut server = Server::for_workload(cfg.clone(), &mix, seed)?;
        let run = server.run(epochs, |obs| policy.decide(obs).ok());
        let rep = run.fairness_vs(&baseline, 5)?;
        println!(
            "{pct:5}%  {:8.1}  {:5.1}%  {:8.3}  {:10.3}",
            run.avg_power(5).get(),
            100.0 * run.avg_power(5).get() / budget.get(),
            rep.average,
            rep.worst
        );
    }
    println!("\n(used% near 100 = the whole budget converted to performance)");
    Ok(())
}
