//! Full closed loop: FastCap capping a simulated 16-core server running a
//! Table III workload, epoch by epoch.
//!
//! Prints a per-epoch trace (power vs. budget, chosen frequencies) and a
//! final summary with per-application degradation — the Fig. 3/4
//! experiment in miniature.
//!
//! ```sh
//! cargo run --release --example capping_server -- [MIX3] [0.6]
//! ```

use fastcap::policies::{CappingPolicy, FastCapPolicy};
use fastcap::sim::{Server, SimConfig};
use fastcap::workloads::mixes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let mix_name = args.next().unwrap_or_else(|| "MIX3".to_string());
    let budget_frac: f64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0.6);

    let mix = mixes::by_name(&mix_name)
        .ok_or_else(|| format!("unknown workload {mix_name}; try ILP1..MIX4"))?;
    let cfg = SimConfig::ispass(16)?.with_time_dilation(100.0);
    let ctl_cfg = cfg.controller_config(budget_frac)?;
    let budget = ctl_cfg.budget();

    println!(
        "workload {mix_name} ({}), budget {budget} ({:.0}% of peak)",
        mix.class,
        budget_frac * 100.0
    );
    println!(
        "apps: {}",
        mix.apps
            .iter()
            .map(|a| a.name.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    );

    // Uncapped baseline for the degradation metric.
    let epochs = 60;
    let mut baseline_server = Server::for_workload(cfg.clone(), &mix, 42)?;
    let baseline = baseline_server.run(epochs, |_| None);

    // Capped run.
    let mut policy = FastCapPolicy::new(ctl_cfg)?;
    let mut server = Server::for_workload(cfg, &mix, 42)?;
    let result = server.run(epochs, |obs| policy.decide(obs).ok());

    println!("\nepoch  power(W)  vs-budget  cores(mean lvl)  mem(lvl)");
    for e in result.epochs.iter().take(20) {
        let mean_core = e.core_freq_idx.iter().sum::<usize>() as f64 / e.core_freq_idx.len() as f64;
        println!(
            "{:5}  {:8.1}  {:8.1}%  {:15.1}  {:8}",
            e.epoch,
            e.total_power.get(),
            100.0 * e.total_power.get() / budget.get(),
            mean_core,
            e.mem_freq_idx
        );
    }
    println!(
        "  ... ({} more epochs)",
        result.epochs.len().saturating_sub(20)
    );

    let skip = 5;
    println!(
        "\naverage power: {} (budget {budget})",
        result.avg_power(skip)
    );
    println!("max epoch avg: {}", result.max_epoch_power(skip));
    let report = result.fairness_vs(&baseline, skip)?;
    println!(
        "performance: avg degradation {:.3}, worst {:.3}, Jain fairness {:.4}",
        report.average, report.worst, report.jain_index
    );

    let degradations = result.degradation_vs(&baseline, skip)?;
    println!("\nper-core degradation (normalized CPI vs uncapped):");
    let apps = mix.instantiate(16).map_err(std::io::Error::other)?;
    for (i, (d, app)) in degradations.iter().zip(&apps).enumerate() {
        println!("  core {i:2} {:10}  {d:.3}", app.profile.name);
    }
    Ok(())
}
