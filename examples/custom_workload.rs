//! Bring your own workload: define application profiles from scratch
//! (instead of the Table III mixes) and cap a heterogeneous 8-core box.
//!
//! Shows the full extension surface: custom MPKI/CPI/row-locality/phase
//! parameters, a non-standard core count, and direct `Server::new` with an
//! explicit app-per-core placement.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use fastcap::policies::{CappingPolicy, FastCapPolicy};
use fastcap::sim::{Server, SimConfig};
use fastcap::workloads::{AppInstance, AppProfile, PhaseSpec};

fn app(name: &str, base_cpi: f64, mpki: f64, wpki: f64, row_hit: f64, mlp: f64) -> AppProfile {
    AppProfile {
        name: name.to_string(),
        base_cpi,
        mpki,
        wpki,
        row_hit_ratio: row_hit,
        mlp,
        phase: PhaseSpec::gentle(0.0),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-core box running a web stack: two latency-critical services,
    // two stream processors, four batch workers.
    let service = app("service", 1.1, 0.8, 0.2, 0.70, 1.5);
    let stream = app("stream", 1.2, 16.0, 7.0, 0.88, 6.0).with_memory_intensity(16.0, 7.0);
    let batch = app("batch", 1.3, 3.0, 1.1, 0.60, 2.0);
    let mut stream_phased = stream.clone();
    stream_phased.phase = PhaseSpec::strong(0.25); // bursty sweeps

    let placement: Vec<AppInstance> = vec![
        AppInstance::new(&service, 0),
        AppInstance::new(&service, 1),
        AppInstance::new(&stream, 0),
        AppInstance::new(&stream_phased, 1),
        AppInstance::new(&batch, 0),
        AppInstance::new(&batch, 1),
        AppInstance::new(&batch, 2),
        AppInstance::new(&batch, 3),
    ];
    for a in &placement {
        a.profile.check().map_err(std::io::Error::other)?;
    }

    let cfg = SimConfig::ispass(8)?.with_time_dilation(100.0);
    let ctl_cfg = cfg.controller_config(0.65)?;
    let budget = ctl_cfg.budget();

    let mut baseline_server = Server::new(cfg.clone(), placement.clone(), 23)?;
    let baseline = baseline_server.run(40, |_| None);

    let mut policy = FastCapPolicy::new(ctl_cfg)?;
    let mut server = Server::new(cfg, placement.clone(), 23)?;
    let run = server.run(40, |obs| policy.decide(obs).ok());

    println!(
        "8-core custom box: uncapped {} -> capped {} (budget {budget})",
        baseline.avg_power(5),
        run.avg_power(5)
    );
    let d = run.degradation_vs(&baseline, 5)?;
    println!("\ncore  app       degradation  final freq level");
    let last = run.epochs.last().expect("ran epochs");
    for (i, (app, deg)) in placement.iter().zip(&d).enumerate() {
        println!(
            "{i:4}  {:8}  {deg:10.3}  {:>4}",
            app.profile.name, last.core_freq_idx[i]
        );
    }
    let rep = run.fairness_vs(&baseline, 5)?;
    println!(
        "\nfairness: avg {:.3}, worst {:.3}, Jain {:.4}",
        rep.average, rep.worst, rep.jain_index
    );
    Ok(())
}
