//! Event-throughput profile of the DES hot path (DESIGN.md §6).
//!
//! Prints events/epoch, ns/event, and µs/epoch for the three
//! `sim_engine` bench configurations — the denominator behind the
//! per-event cost numbers quoted in DESIGN.md §6 and a quick way to see
//! how a change moves the hot path without firing up criterion.
//!
//! ```text
//! cargo run --release --example evcount
//! ```

use fastcap_sim::{Server, SimConfig};
use fastcap_workloads::mixes;
use std::time::Instant;

fn main() {
    println!(
        "{:<10} {:>12} {:>10} {:>12}",
        "config", "ev/epoch", "ns/event", "us/epoch"
    );
    for (mix, n) in [("ILP1", 16usize), ("MEM1", 16), ("MEM1", 64)] {
        let cfg = SimConfig::ispass(n)
            .expect("valid config")
            .with_time_dilation(100.0)
            .with_meter_noise(0.0);
        let m = mixes::by_name(mix).expect("mix exists");
        let mut s = Server::for_workload(cfg, &m, 7).expect("server builds");
        // Warm into steady state, then measure.
        s.run(2, |_| None);
        let e0 = s.events_scheduled();
        let epochs = 50;
        let t = Instant::now();
        for _ in 0..epochs {
            s.run_epoch(None);
        }
        let dt = t.elapsed().as_secs_f64();
        let ev = (s.events_scheduled() - e0) as f64;
        println!(
            "{:<10} {:>12.0} {:>10.1} {:>12.1}",
            format!("{mix}_{n}c"),
            ev / f64::from(epochs),
            dt * 1e9 / ev,
            dt * 1e6 / f64::from(epochs),
        );
    }
}
