//! Head-to-head policy comparison on one workload — a one-workload slice
//! of Fig. 9: FastCap vs. CPU-only, Freq-Par, Eql-Pwr and Eql-Freq.
//!
//! ```sh
//! cargo run --release --example policy_comparison -- [MIX4] [0.6]
//! ```

use fastcap::core::fairness;
use fastcap::policies::{
    CappingPolicy, CpuOnlyPolicy, EqlFreqPolicy, EqlPwrPolicy, FastCapPolicy, FreqParPolicy,
};
use fastcap::sim::{Server, SimConfig};
use fastcap::workloads::mixes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let mix_name = args.next().unwrap_or_else(|| "MIX4".to_string());
    let budget_frac: f64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0.6);

    let mix = mixes::by_name(&mix_name).ok_or_else(|| format!("unknown workload {mix_name}"))?;
    let cfg = SimConfig::ispass(16)?.with_time_dilation(100.0);
    let budget = cfg.controller_config(budget_frac)?.budget();
    let epochs = 50;
    let seed = 7;

    let mut baseline_server = Server::for_workload(cfg.clone(), &mix, seed)?;
    let baseline = baseline_server.run(epochs, |_| None);
    println!(
        "workload {mix_name}, budget {budget}; uncapped draw {}",
        baseline.avg_power(5)
    );
    println!("\npolicy      avg-power  avg-degr  worst-degr  jain");

    let policies: Vec<Box<dyn CappingPolicy>> = vec![
        Box::new(FastCapPolicy::new(cfg.controller_config(budget_frac)?)?),
        Box::new(CpuOnlyPolicy::new(cfg.controller_config(budget_frac)?)?),
        Box::new(FreqParPolicy::new(cfg.controller_config(budget_frac)?)?),
        Box::new(EqlPwrPolicy::new(cfg.controller_config(budget_frac)?)?),
        Box::new(EqlFreqPolicy::new(cfg.controller_config(budget_frac)?)?),
    ];
    for mut policy in policies {
        let name = policy.name();
        let mut server = Server::for_workload(cfg.clone(), &mix, seed)?;
        let run = server.run(epochs, |obs| policy.decide(obs).ok());
        let d = run.degradation_vs(&baseline, 5)?;
        let rep = fairness::report(&d)?;
        println!(
            "{name:10}  {:8.1}W  {:8.3}  {:10.3}  {:.4}",
            run.avg_power(5).get(),
            rep.average,
            rep.worst,
            rep.jain_index
        );
    }
    println!("\n(lower degradation is better; Jain closer to 1 is fairer)");
    Ok(())
}
