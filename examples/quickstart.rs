//! Quickstart: run the FastCap algorithm on one epoch of counters.
//!
//! This is the controller in isolation — no simulator. You hand it the
//! hardware counters the paper's OS module would collect (Sec. III-C) and
//! get back per-core and memory DVFS settings that maximize fair
//! performance under the budget.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fastcap::core::capper::{FastCapConfig, FastCapController};
use fastcap::core::counters::{CoreSample, EpochObservation, MemorySample};
use fastcap::core::freq::FreqLadder;
use fastcap::core::units::{Hz, Secs, Watts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16-core server with the paper's platform defaults (2.2–4.0 GHz
    // cores, 200–800 MHz memory bus), peak power 120 W, capped at 60%.
    let cfg = FastCapConfig::builder(16)
        .budget_fraction(0.6)
        .peak_power(Watts(120.0))
        .build()?;
    let budget = cfg.budget();
    let mut controller = FastCapController::new(cfg)?;

    // One epoch of counters. Half the cores are CPU-bound (few last-level
    // misses), half are memory-bound (many misses).
    let cores = (0..16)
        .map(|i| CoreSample {
            freq: Hz::from_ghz(4.0),
            busy_time_per_instruction: Secs::from_nanos(0.28),
            instructions: 1_000_000,
            last_level_misses: if i % 2 == 0 { 500 } else { 12_000 },
            power: Watts(4.8),
        })
        .collect();
    let memory = MemorySample {
        bus_freq: Hz::from_mhz(800.0),
        bank_queue: 1.6, // Q: mean bank occupancy at arrival
        bus_queue: 1.3,  // U: mean bus waiters at departure
        bank_service_time: Secs::from_nanos(28.0),
        power: Watts(32.0),
    };
    let obs = EpochObservation::single(cores, memory, Watts(115.0));

    let decision = controller.decide(&obs)?;

    let core_ladder = FreqLadder::ispass_core();
    let mem_ladder = FreqLadder::ispass_memory_bus();
    println!("budget: {budget}");
    println!(
        "degradation factor D = {:.3} (every app runs at {:.1}% of its best performance)",
        decision.degradation,
        decision.degradation * 100.0
    );
    println!("predicted power: {}", decision.predicted_power);
    println!(
        "memory bus: {:.0} MHz",
        decision.mem_freq_hz(&mem_ladder).mhz()
    );
    for (i, f) in decision.core_freqs_hz(&core_ladder).iter().enumerate() {
        let kind = if i % 2 == 0 { "cpu-bound" } else { "mem-bound" };
        println!("core {i:2} ({kind}): {:.1} GHz", f.ghz());
    }
    Ok(())
}
