//! Per-policy roll-up of a `repro --trace` Chrome-trace file.
//!
//! Reads the trace-event JSON that `repro trace <artifact>` (or any
//! artifact run with `--trace FILE`) writes, groups the decision
//! instant events by policy, and prints decision-latency and overshoot
//! aggregates — a quick offline view of the same audit trail `repro
//! explain` renders per epoch.
//!
//! ```text
//! repro trace scn_capstep --quick --out /tmp/tr
//! cargo run --release --example trace_summary /tmp/tr/scn_capstep.trace.json
//! ```
//!
//! The latency column is *modeled* time: `decide_ns` is the policy's
//! per-epoch cost-counter delta priced by `COST_MODEL.json`, so the
//! numbers are byte-stable across machines and `--jobs`/`--lanes`.

use serde_json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Aggregates for one policy across every stream in the file.
#[derive(Default)]
struct Roll {
    decisions: u64,
    decide_ns_sum: u64,
    decide_ns_max: u64,
    /// Epochs where a budget was in force and measured power exceeded it.
    over_epochs: u64,
    budgeted_epochs: u64,
    worst_overshoot_pct: f64,
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_summary <trace.json>");
        eprintln!("  (produce one with: repro trace scn_capstep --quick --out /tmp/tr)");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_summary: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("trace_summary: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(Value::Array(events)) = root.get("traceEvents") else {
        eprintln!("trace_summary: {path} has no traceEvents array");
        return ExitCode::FAILURE;
    };

    let mut streams = 0u64;
    let mut rolls: BTreeMap<String, Roll> = BTreeMap::new();
    for ev in events {
        match (
            ev.get("name").and_then(Value::as_str),
            ev.get("ph").and_then(Value::as_str),
        ) {
            (Some("process_name"), Some("M")) => streams += 1,
            (Some(name), Some("i")) if name.starts_with("decide ") => {
                let Some(args) = ev.get("args") else { continue };
                let policy = args
                    .get("policy")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_string();
                let roll = rolls.entry(policy).or_default();
                roll.decisions += 1;
                let ns = args.get("decide_ns").and_then(Value::as_u64).unwrap_or(0);
                roll.decide_ns_sum += ns;
                roll.decide_ns_max = roll.decide_ns_max.max(ns);
                if let (Some(budget), Some(measured)) = (
                    args.get("budget_w").and_then(Value::as_f64),
                    args.get("measured_w").and_then(Value::as_f64),
                ) {
                    roll.budgeted_epochs += 1;
                    let pct = (measured - budget) / budget * 100.0;
                    if pct > 0.0 {
                        roll.over_epochs += 1;
                    }
                    roll.worst_overshoot_pct = roll.worst_overshoot_pct.max(pct);
                }
            }
            _ => {}
        }
    }

    println!("{path}: {streams} stream(s), {} event(s)", events.len());
    println!(
        "{:<16} {:>9} {:>12} {:>12} {:>10} {:>11}",
        "policy", "decisions", "decide_us", "max_us", "over/cap", "worst_over%"
    );
    for (policy, r) in &rolls {
        let mean_us = if r.decisions == 0 {
            0.0
        } else {
            r.decide_ns_sum as f64 / r.decisions as f64 / 1000.0
        };
        let worst = if r.budgeted_epochs == 0 {
            "-".to_string()
        } else {
            format!("{:+.2}", r.worst_overshoot_pct)
        };
        println!(
            "{:<16} {:>9} {:>12.2} {:>12.2} {:>7}/{:<3} {:>11}",
            policy,
            r.decisions,
            mean_us,
            r.decide_ns_max as f64 / 1000.0,
            r.over_epochs,
            r.budgeted_epochs,
            worst
        );
    }
    if rolls.is_empty() {
        println!("(no decision events — was the run policy-less?)");
    }
    ExitCode::SUCCESS
}
