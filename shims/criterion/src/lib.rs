//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `b.iter(..)`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple wall-clock
//! measurement loop (warm-up, then a fixed sample count, reporting the
//! median and throughput). No statistics engine, plots, or saved baselines;
//! good enough to compile `harness = false` bench targets and give usable
//! relative numbers offline.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a benchmark body.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation for a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter`.
    median_ns: f64,
}

impl Bencher {
    /// Times `f`, storing the median time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate a per-call cost to size the batches.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            black_box(f());
            warmup_iters += 1;
        }
        let per_call = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
        // Aim for ~10 ms per sample, 11 samples -> median is index 5.
        let batch = ((0.010 / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut samples: Vec<f64> = (0..11)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t.elapsed().as_secs_f64() * 1e9 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.median_ns = samples[samples.len() / 2];
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn report(group: &str, label: &str, median_ns: f64, throughput: Option<Throughput>) {
    let name = if group.is_empty() {
        label.to_owned()
    } else {
        format!("{group}/{label}")
    };
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.2} Melem/s)", n as f64 / median_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.2} MiB/s)",
                n as f64 / median_ns * 1e9 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("{name:<50} time: {:>12}{extra}", human_ns(median_ns));
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; this shim
    /// always takes a fixed number of samples).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benches with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { median_ns: 0.0 };
        f(&mut b);
        report(&self.name, &id.label, b.median_ns, self.throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { median_ns: 0.0 };
        f(&mut b, input);
        report(&self.name, &id.label, b.median_ns, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { median_ns: 0.0 };
        f(&mut b);
        report("", &id.label, b.median_ns, None);
        self
    }
}

/// Declares a group of benchmark functions, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("sum", 10), |b| {
            b.iter(|| (0..10u64).map(black_box).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, spin);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 16).label, "f/16");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }

    #[test]
    fn human_times() {
        assert_eq!(human_ns(12.0), "12.0 ns");
        assert_eq!(human_ns(1.5e3), "1.50 µs");
        assert_eq!(human_ns(2.5e6), "2.50 ms");
    }
}
