//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `b.iter(..)`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock measurement loop (warm-up, then a fixed sample count,
//! reporting median/min/max and throughput). No statistics engine or
//! plots; good enough to compile `harness = false` bench targets and give
//! usable relative numbers offline.
//!
//! Beyond the plain-text report, the harness accepts a few CLI flags
//! (anything after `cargo bench ... --`):
//!
//! * `--json PATH` — append this run's per-bench records to a
//!   `save_baseline`-style JSON report (created if missing, merged by
//!   bench name if present), so successive runs and different bench
//!   binaries accumulate into one diffable file:
//!   `{ schema, commit, cores, benches: [{name, median_ns, min_ns,
//!   max_ns}] }`. The commit is taken from `$GITHUB_SHA` or
//!   `$BENCH_COMMIT` (`"local"` otherwise).
//! * `--save-baseline PATH` — write this run's records (merged with any
//!   existing records at PATH) as a baseline file, same schema as
//!   `--json`.
//! * `--baseline PATH` — after all groups run, compare this run's
//!   medians against the baseline at PATH and print a per-bench delta
//!   table. A change is flagged only when it exceeds the noise band
//!   (3× the summed median-absolute-deviations of the two runs) — the
//!   shim's statistics engine: median over samples, MAD for spread.
//! * `--quick` — shorter warm-up and fewer samples for CI smoke gates.
//! * `--bench` and unrecognized flags are accepted and ignored (cargo
//!   passes `--bench` through).

use std::fmt;
use std::hint::black_box as std_black_box;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a benchmark body.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

// ---- harness configuration and the cross-group record registry --------

#[derive(Debug, Clone, Default)]
struct Config {
    quick: bool,
    json: Option<String>,
    save_baseline: Option<String>,
    baseline: Option<String>,
}

fn config() -> &'static Config {
    static CONFIG: OnceLock<Config> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let mut cfg = Config::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => cfg.quick = true,
                "--json" => cfg.json = args.next(),
                "--save-baseline" => cfg.save_baseline = args.next(),
                "--baseline" => cfg.baseline = args.next(),
                _ => {} // `--bench`, filters, ...: accepted, ignored
            }
        }
        cfg
    })
}

/// One benchmark's measured statistics, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Median over the samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Median absolute deviation of the samples — the robust spread
    /// estimate baseline comparisons use as their noise band.
    pub mad_ns: f64,
}

fn registry() -> &'static Mutex<Vec<(String, Stats)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(String, Stats)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation for a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    stats: Stats,
}

impl Bencher {
    /// Times `f`, storing median/min/max time per call over the samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let (warmup_ms, n_samples, sample_ms) = if config().quick {
            (10, 5, 3.0e-3)
        } else {
            (50, 11, 10.0e-3)
        };
        // Warm up and estimate a per-call cost to size the batches.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(warmup_ms) {
            black_box(f());
            warmup_iters += 1;
        }
        let per_call = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
        let batch = ((sample_ms / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut samples: Vec<f64> = (0..n_samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t.elapsed().as_secs_f64() * 1e9 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples[samples.len() / 2];
        let mut deviations: Vec<f64> = samples.iter().map(|&s| (s - median).abs()).collect();
        deviations.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.stats = Stats {
            median_ns: median,
            min_ns: samples[0],
            max_ns: samples[samples.len() - 1],
            mad_ns: deviations[deviations.len() / 2],
        };
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn report(group: &str, label: &str, stats: Stats, throughput: Option<Throughput>) {
    let name = if group.is_empty() {
        label.to_owned()
    } else {
        format!("{group}/{label}")
    };
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.2} Melem/s)", n as f64 / stats.median_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.2} MiB/s)",
                n as f64 / stats.median_ns * 1e9 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!(
        "{name:<50} time: {:>12}  [{} .. {}]{extra}",
        human_ns(stats.median_ns),
        human_ns(stats.min_ns),
        human_ns(stats.max_ns),
    );
    registry()
        .lock()
        .expect("bench registry poisoned")
        .push((name, stats));
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; this shim
    /// always takes a fixed number of samples).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benches with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            stats: Stats::default(),
        };
        f(&mut b);
        report(&self.name, &id.label, b.stats, self.throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            stats: Stats::default(),
        };
        f(&mut b, input);
        report(&self.name, &id.label, b.stats, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            stats: Stats::default(),
        };
        f(&mut b);
        report("", &id.label, b.stats, None);
        self
    }
}

// ---- JSON report -------------------------------------------------------

fn stats_value(name: &str, s: Stats) -> serde::Value {
    serde::Value::Object(vec![
        ("name".into(), serde::Value::Str(name.into())),
        ("median_ns".into(), serde::Value::Float(s.median_ns)),
        ("min_ns".into(), serde::Value::Float(s.min_ns)),
        ("max_ns".into(), serde::Value::Float(s.max_ns)),
        ("mad_ns".into(), serde::Value::Float(s.mad_ns)),
    ])
}

/// Parses a report file's `benches` array. `mad_ns` is optional so
/// reports written before the statistics engine landed still load (their
/// noise band is then 0 — every delta gets flagged, which errs loud).
fn parse_benches(text: &str) -> Vec<(String, Stats)> {
    let mut out = Vec::new();
    if let Ok(v) = serde_json::from_str::<serde::Value>(text) {
        if let Some(serde::Value::Array(benches)) = v.get("benches") {
            for b in benches {
                let (Some(name), Some(median), Some(min), Some(max)) = (
                    b.get("name").and_then(serde::Value::as_str),
                    b.get("median_ns").and_then(serde::Value::as_f64),
                    b.get("min_ns").and_then(serde::Value::as_f64),
                    b.get("max_ns").and_then(serde::Value::as_f64),
                ) else {
                    continue;
                };
                let mad = b
                    .get("mad_ns")
                    .and_then(serde::Value::as_f64)
                    .unwrap_or(0.0);
                out.push((
                    name.to_owned(),
                    Stats {
                        median_ns: median,
                        min_ns: min,
                        max_ns: max,
                        mad_ns: mad,
                    },
                ));
            }
        }
    }
    out
}

/// Renders the `--baseline` comparison: one line per bench measured this
/// run that also exists in the baseline, flagging only deltas outside the
/// noise band (3× the summed MADs of the two runs).
fn compare_lines(baseline: &[(String, Stats)], records: &[(String, Stats)]) -> Vec<String> {
    let mut lines = Vec::new();
    for (name, now) in records {
        let Some((_, old)) = baseline.iter().find(|(n, _)| n == name) else {
            lines.push(format!("{name:<50} (new — no baseline record)"));
            continue;
        };
        let ratio = now.median_ns / old.median_ns.max(1e-9);
        let noise = 3.0 * (now.mad_ns + old.mad_ns);
        let verdict = if (now.median_ns - old.median_ns).abs() <= noise {
            "within noise"
        } else if ratio > 1.0 {
            "SLOWER"
        } else {
            "faster"
        };
        lines.push(format!(
            "{name:<50} {:>12} -> {:>12}  ({ratio:.2}x, {verdict})",
            human_ns(old.median_ns),
            human_ns(now.median_ns),
        ));
    }
    lines
}

/// Writes reports and runs the baseline comparison from every benchmark
/// run so far in this process. Called by `criterion_main!` after all
/// groups; a no-op without `--json`/`--save-baseline`/`--baseline`.
pub fn finalize() {
    let records = registry().lock().expect("bench registry poisoned").clone();
    if let Some(path) = config().json.clone() {
        write_report(&path, records.clone());
    }
    if let Some(path) = config().save_baseline.clone() {
        write_report(&path, records.clone());
    }
    if let Some(path) = config().baseline.clone() {
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                println!("\nbaseline comparison vs {path}:");
                for line in compare_lines(&parse_benches(&text), &records) {
                    println!("{line}");
                }
            }
            Err(e) => eprintln!("warning: cannot read baseline {path}: {e}"),
        }
    }
}

/// The config-independent body of [`finalize`]: merges `records` into the
/// report at `path` (by bench name; existing records survive unless
/// re-measured) and rewrites it.
fn write_report(path: &str, records: Vec<(String, Stats)>) {
    let mut merged: Vec<(String, Stats)> = std::fs::read_to_string(path)
        .map(|t| parse_benches(&t))
        .unwrap_or_default();
    for (name, stats) in records {
        if let Some(slot) = merged.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = stats;
        } else {
            merged.push((name, stats));
        }
    }
    let commit = std::env::var("GITHUB_SHA")
        .or_else(|_| std::env::var("BENCH_COMMIT"))
        .unwrap_or_else(|_| "local".into());
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let doc = serde::Value::Object(vec![
        (
            "schema".into(),
            serde::Value::Str("fastcap-bench-v1".into()),
        ),
        ("commit".into(), serde::Value::Str(commit)),
        ("cores".into(), serde::Value::UInt(cores as u64)),
        (
            "benches".into(),
            serde::Value::Array(merged.iter().map(|(n, s)| stats_value(n, *s)).collect()),
        ),
    ]);
    let text = serde_json::to_string_pretty(&doc).expect("render bench report");
    if let Err(e) = std::fs::write(path, text + "\n") {
        eprintln!("warning: could not write bench report {path}: {e}");
    }
}

/// Declares a group of benchmark functions, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("sum", 10), |b| {
            b.iter(|| (0..10u64).map(black_box).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, spin);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
        let reg = registry().lock().unwrap();
        let got: Vec<&str> = reg.iter().map(|(n, _)| n.as_str()).collect();
        assert!(got.contains(&"g/sum/10"));
        assert!(got.contains(&"g/4"));
        for (_, s) in reg.iter() {
            assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
            assert!(s.min_ns > 0.0);
            // MAD is a spread within the sample range.
            assert!(s.mad_ns >= 0.0 && s.mad_ns <= s.max_ns - s.min_ns);
        }
    }

    #[test]
    fn baseline_comparison_flags_only_outside_noise() {
        let s = |median_ns: f64, mad_ns: f64| Stats {
            median_ns,
            min_ns: median_ns * 0.9,
            max_ns: median_ns * 1.1,
            mad_ns,
        };
        let baseline = vec![
            ("steady".to_string(), s(100.0, 5.0)),
            ("regressed".to_string(), s(100.0, 1.0)),
        ];
        let now = vec![
            ("steady".to_string(), s(110.0, 2.0)),    // Δ10 ≤ 3×(5+2)
            ("regressed".to_string(), s(200.0, 1.0)), // Δ100 > 3×2
            ("fresh".to_string(), s(7.0, 0.5)),
        ];
        let lines = compare_lines(&baseline, &now);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("within noise"), "{}", lines[0]);
        assert!(
            lines[1].contains("SLOWER") && lines[1].contains("2.00x"),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("no baseline record"), "{}", lines[2]);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 16).label, "f/16");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }

    #[test]
    fn human_times() {
        assert_eq!(human_ns(12.0), "12.0 ns");
        assert_eq!(human_ns(1.5e3), "1.50 µs");
        assert_eq!(human_ns(2.5e6), "2.50 ms");
    }

    #[test]
    fn json_report_writes_and_merges() {
        let dir = std::env::temp_dir().join("fastcap_criterion_json");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        // Seed a file with one record to keep and one to re-measure.
        std::fs::write(
            &path,
            r#"{"schema":"fastcap-bench-v1","commit":"old","cores":1,
                "benches":[{"name":"keep/me","median_ns":5.0,"min_ns":4.0,"max_ns":6.0},
                           {"name":"g/sum/10","median_ns":999.0,"min_ns":999.0,"max_ns":999.0}]}"#,
        )
        .unwrap();
        write_report(
            path.to_str().unwrap(),
            vec![
                (
                    "g/sum/10".into(),
                    Stats {
                        median_ns: 1.0,
                        min_ns: 0.5,
                        max_ns: 2.0,
                        mad_ns: 0.1,
                    },
                ),
                (
                    "brand/new".into(),
                    Stats {
                        median_ns: 7.0,
                        min_ns: 6.0,
                        max_ns: 8.0,
                        mad_ns: 0.2,
                    },
                ),
            ],
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde::Value = serde_json::from_str(&text).unwrap();
        let Some(serde::Value::Array(benches)) = v.get("benches") else {
            panic!("benches array");
        };
        // keep/me survived untouched, g/sum/10 was replaced (not
        // duplicated), brand/new was appended.
        assert_eq!(benches.len(), 3);
        let by_name = |n: &str| {
            benches
                .iter()
                .find(|b| b.get("name").and_then(serde::Value::as_str) == Some(n))
                .unwrap_or_else(|| panic!("missing {n}"))
        };
        assert_eq!(
            by_name("keep/me")
                .get("median_ns")
                .and_then(serde::Value::as_f64),
            Some(5.0)
        );
        assert_eq!(
            by_name("g/sum/10")
                .get("median_ns")
                .and_then(serde::Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            by_name("brand/new")
                .get("median_ns")
                .and_then(serde::Value::as_f64),
            Some(7.0)
        );
        // A second write with no new records must be idempotent.
        write_report(path.to_str().unwrap(), Vec::new());
        let again: serde::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let Some(serde::Value::Array(benches2)) = again.get("benches") else {
            panic!("benches array");
        };
        assert_eq!(benches2.len(), 3);
    }
}
