//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map` / `prop_filter`, range and tuple
//! strategies, [`collection::vec`], [`any`], [`Just`], `prop_assert!` /
//! `prop_assert_eq!`, and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: inputs are sampled from a deterministic
//! RNG (seed configurable via the `PROPTEST_SEED` environment variable,
//! default fixed) and failures are reported without shrinking — the failing
//! case index and seed are printed instead so a run can be reproduced
//! exactly. Determinism across consecutive `cargo test` runs is guaranteed.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::SmallRng as TestRng;
use rand::Rng;
#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Failure value carried by an `Err` returned from a property body (the
/// real crate's `TestCaseError`, simplified). Bodies may `return Ok(())`
/// early; the runner appends the final `Ok(())` itself.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "test case failed: {}", self.0)
    }
}

/// Runner configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test body runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps untagged blocks fast while still
        // exploring meaningfully. Blocks in this repo set it explicitly.
        ProptestConfig { cases: 64 }
    }
}

/// Returns the base seed: `PROPTEST_SEED` env var if set, else fixed.
#[must_use]
pub fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5eed_0000_2016_0ca9)
}

/// Replay file for one property test: failing `(seed, case)` pairs are
/// persisted here and replayed **first** on the next run, so a proptest
/// failure is a reproducible one-liner (`cargo test <name>`) instead of
/// a copy-the-env-var dance. Directory: `PROPTEST_REPLAY_DIR` if set,
/// else `proptest-regressions/` under the working directory (the package
/// dir under `cargo test` — commit the files to pin regressions, like
/// the real crate's).
#[must_use]
pub fn replay_file(test_name: &str) -> std::path::PathBuf {
    let dir = std::env::var("PROPTEST_REPLAY_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("proptest-regressions"));
    dir.join(format!("{test_name}.replay"))
}

/// Loads the persisted `(seed, case)` pairs for a test; a missing file is
/// an empty list and malformed lines are skipped.
#[must_use]
pub fn load_replays(path: &std::path::Path) -> Vec<(u64, u32)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            Some((it.next()?.parse().ok()?, it.next()?.parse().ok()?))
        })
        .collect()
}

/// Persists one failing `(seed, case)` pair (idempotent, creates the
/// directory, tolerates filesystem failure — persistence must never mask
/// the original test failure).
pub fn persist_replay(path: &std::path::Path, seed: u64, case: u32) {
    if load_replays(path).contains(&(seed, case)) {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut text = std::fs::read_to_string(path).unwrap_or_else(|_| {
        "# proptest shim replay file: failing cases as `seed case`, replayed first on re-run\n"
            .to_string()
    });
    text.push_str(&format!("{seed} {case}\n"));
    let _ = std::fs::write(path, text);
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Retains only values passing `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
}

/// Types with a canonical "any value" strategy (stand-in for `Arbitrary`).
pub trait Arbitrary: Sized {
    /// The `any::<T>()` strategy type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for the full domain of a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The canonical strategy for `T`, like proptest's `any`.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property body, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Defines property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0.0_f64..1.0, v in collection::vec(0u32..9, 1..8)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    (@munch ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::base_seed();
            // One RNG stream per (test, case): derived from the name so
            // adding tests does not perturb sibling streams.
            let mut name_hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in stringify!($name).bytes() {
                name_hash ^= b as u64;
                name_hash = name_hash.wrapping_mul(0x100_0000_01b3);
            }
            let __replay = $crate::replay_file(stringify!($name));
            // Persisted failures replay first — a failing property stays a
            // reproducible one-liner until it is fixed.
            let __persisted = $crate::load_replays(&__replay);
            for &(rseed, rcase) in &__persisted {
                let mut __rng = <$crate::TestRng as $crate::__SeedableRng>::seed_from_u64(
                    rseed ^ name_hash ^ ((rcase as u64) << 32),
                );
                $(let $arg = ($strat).generate(&mut __rng);)+
                let run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $arg;)+
                    $body
                    ::std::result::Result::Ok(())
                };
                let report = || {
                    eprintln!(
                        "proptest shim: {} failed replaying persisted case {rcase} \
                         (seed {rseed}) from {}",
                        stringify!($name),
                        __replay.display(),
                    );
                };
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        report();
                        panic!("{e}");
                    }
                    ::std::result::Result::Err(payload) => {
                        report();
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
            for case in 0..config.cases {
                if __persisted.contains(&(seed, case)) {
                    continue; // already replayed above
                }
                let mut __rng = <$crate::TestRng as $crate::__SeedableRng>::seed_from_u64(
                    seed ^ name_hash ^ ((case as u64) << 32),
                );
                $(let $arg = ($strat).generate(&mut __rng);)+
                let run = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $arg;)+
                    $body
                    ::std::result::Result::Ok(())
                };
                let report = || {
                    $crate::persist_replay(&__replay, seed, case);
                    eprintln!(
                        "proptest shim: {} failed at case {case}/{} (seed {seed}); \
                         persisted to {} — the case replays first on the next run \
                         (or re-run with PROPTEST_SEED={seed})",
                        stringify!($name),
                        config.cases,
                        __replay.display(),
                    );
                };
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        report();
                        panic!("{e}");
                    }
                    ::std::result::Result::Err(payload) => {
                        report();
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    (@munch ($cfg:expr);) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_land_in_bounds(x in 1.5_f64..9.5, n in 3usize..7) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn vec_and_tuple_strategies(v in collection::vec((0u32..5, 0.0_f64..1.0), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 5);
                prop_assert!((0.0..1.0).contains(&b));
            }
        }

        #[test]
        fn map_and_any(flag in any::<bool>(), y in (0u64..100).prop_map(|v| v * 2)) {
            prop_assert!(matches!(flag, true | false));
            prop_assert_eq!(y % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        use crate::Strategy as _;
        let s = (0u64..1000, 0.0_f64..1.0);
        let mut r1 = <crate::TestRng as rand::SeedableRng>::seed_from_u64(9);
        let mut r2 = <crate::TestRng as rand::SeedableRng>::seed_from_u64(9);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn replay_files_round_trip_and_dedupe() {
        let dir = std::env::temp_dir().join("proptest_shim_replay_rt");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("some_test.replay");
        assert!(
            crate::load_replays(&path).is_empty(),
            "missing file = empty"
        );
        crate::persist_replay(&path, 123, 7);
        crate::persist_replay(&path, 456, 0);
        crate::persist_replay(&path, 123, 7); // duplicate ignored
        assert_eq!(crate::load_replays(&path), vec![(123, 7), (456, 0)]);
        // Header and malformed lines are skipped.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('#'), "{text}");
        std::fs::write(&path, format!("{text}not numbers\n")).unwrap();
        assert_eq!(crate::load_replays(&path), vec![(123, 7), (456, 0)]);
    }

    // No #[test] attribute: invoked manually (and caught) by the replay
    // integration test below.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        fn always_fails_above_three(x in 0u32..100) {
            prop_assert!(x <= 3, "x = {x}");
        }
    }

    #[test]
    fn failures_persist_and_replay_first() {
        // Isolate the replay directory for this test (env vars are
        // process-global, so only this test touches the variable).
        let dir = std::env::temp_dir().join("proptest_shim_replay_it");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("PROPTEST_REPLAY_DIR", &dir);
        let path = crate::replay_file("always_fails_above_three");

        // First run: fails at some case, persists (seed, case).
        let first = std::panic::catch_unwind(always_fails_above_three);
        assert!(first.is_err(), "property must fail");
        let persisted = crate::load_replays(&path);
        assert_eq!(persisted.len(), 1, "one failing case persisted");
        assert_eq!(persisted[0].0, crate::base_seed());

        // Second run: the persisted case replays first and still fails —
        // the file stays (regressions pin until fixed, like the real
        // crate's `proptest-regressions`).
        let second = std::panic::catch_unwind(always_fails_above_three);
        assert!(second.is_err(), "replayed case must fail again");
        assert_eq!(crate::load_replays(&path), persisted, "file unchanged");
        std::env::remove_var("PROPTEST_REPLAY_DIR");
    }
}
