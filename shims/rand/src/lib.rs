//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++, the same algorithm real
//! `rand` 0.8 uses for `SmallRng` on 64-bit targets), the [`Rng`] /
//! [`SeedableRng`] / [`RngCore`] traits, and `gen` / `gen_range` /
//! `gen_bool` over the types this workspace samples. Everything is fully
//! deterministic for a given seed.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that [`Rng::gen`] can produce (stand-in for rand's
/// `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Samples a uniform value of `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly sampleable over a range (stand-in for `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = Lehmer128::widen(rng.next_u64(), span);
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = Lehmer128::widen(rng.next_u64(), span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Widening-multiply helper for unbiased-enough integer range reduction.
struct Lehmer128;

impl Lehmer128 {
    /// Maps a uniform `u64` onto `[0, span)` via 128-bit widening multiply.
    fn widen(x: u64, span: u128) -> u128 {
        ((x as u128) * span) >> 64
    }
}

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a single value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (via splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates an RNG from OS entropy. This offline shim has no entropy
    /// source, so it falls back to a fixed seed — determinism is a feature
    /// here.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x5eed_cafe_f00d_d00d)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind real `rand`'s 64-bit `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias so `StdRng` call sites also work against the shim.
    pub type StdRng = SmallRng;
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let r = rng.gen_range(3usize..10);
            assert!((3..10).contains(&r));
            let ri = rng.gen_range(5u64..=6);
            assert!((5..=6).contains(&ri));
            let fr = rng.gen_range(-2.0_f64..2.0);
            assert!((-2.0..2.0).contains(&fr));
        }
    }

    #[test]
    fn mean_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
