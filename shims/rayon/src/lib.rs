//! Offline rayon-style stand-in: the minimal data-parallel surface this
//! workspace needs, built on `std::thread::scope`.
//!
//! Real rayon carries a work-stealing deque, splittable parallel
//! iterators, and a global pool. The sweeps in `fastcap-bench` need none
//! of that: every unit of work is an independent, coarse-grained closure
//! over an indexed work list, so a shared atomic cursor over `0..len`
//! plus one OS thread per job slot saturates the hardware just as well.
//! The API is kept rayon-shaped ([`join`], [`current_num_threads`]) so a
//! future swap to the real crate is mechanical.
//!
//! Guarantees relied on by callers:
//!
//! * **Deterministic ordering** — [`par_map_indexed`] returns results
//!   ordered by input index, never by completion order.
//! * **Panic propagation** — a panicking work item aborts the map and the
//!   panic payload resurfaces on the calling thread.
//! * **No detached threads** — all workers are scoped; the call returns
//!   only after every worker has exited.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of threads the default pool would use: the machine's available
/// parallelism (1 when it cannot be queried).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, and returns both results
/// (rayon's core primitive; here: one scoped thread for `b`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Maps `f` over `0..len` on up to `threads` worker threads and returns
/// the results **ordered by input index**.
///
/// `threads` is clamped to `[1, len]`; with one thread (or `len <= 1`)
/// the map runs inline on the caller with no thread machinery at all, so
/// a serial run is byte-for-byte the plain `for` loop. Work is handed
/// out through a shared atomic cursor: threads grab the next unclaimed
/// index, so long and short items balance without pre-partitioning.
///
/// # Panics
///
/// Re-raises the first observed worker panic on the calling thread.
pub fn par_map_indexed<T, F>(threads: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(len.max(1));
    if threads <= 1 {
        return (0..len).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    let mut shards: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        mine.push((i, f(i)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    // Merge the per-thread shards back into input order.
    let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
    for shard in &mut shards {
        for (i, v) in shard.drain(..) {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, v)| v.unwrap_or_else(|| panic!("index {i} never produced")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1, 2, 4, 8] {
            let out = par_map_indexed(threads, 100, |i| {
                // Make late indices finish first so completion order and
                // input order disagree.
                std::thread::sleep(std::time::Duration::from_micros(
                    (100 - i as u64).saturating_mul(10),
                ));
                i * 3
            });
            assert_eq!(
                out,
                (0..100).map(|i| i * 3).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_map_oversubscribed_threads_clamp() {
        assert_eq!(par_map_indexed(64, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn par_map_propagates_panics() {
        let r = std::panic::catch_unwind(|| {
            par_map_indexed(4, 8, |i| {
                if i == 5 {
                    panic!("boom at 5");
                }
                i
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
