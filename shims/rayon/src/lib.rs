//! Offline rayon-style stand-in: the minimal data-parallel surface this
//! workspace needs, built on `std::thread::scope`.
//!
//! Real rayon carries a work-stealing deque, splittable parallel
//! iterators, and a global pool. The sweeps in `fastcap-bench` need none
//! of that: every unit of work is an independent, coarse-grained closure
//! over an indexed work list, so a shared atomic cursor over `0..len`
//! plus one OS thread per job slot saturates the hardware just as well.
//! The API is kept rayon-shaped ([`join`], [`current_num_threads`]) so a
//! future swap to the real crate is mechanical.
//!
//! Guarantees relied on by callers:
//!
//! * **Deterministic ordering** — [`par_map_indexed`] returns results
//!   ordered by input index, never by completion order.
//! * **Panic propagation** — a panicking work item aborts the map and the
//!   panic payload resurfaces on the calling thread.
//! * **No detached threads** — all workers are scoped; the call returns
//!   only after every worker has exited.

use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of threads the default pool would use: the machine's available
/// parallelism (1 when it cannot be queried).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, and returns both results
/// (rayon's core primitive; here: one scoped thread for `b`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Maps `f` over `0..len` on up to `threads` worker threads and returns
/// the results **ordered by input index**.
///
/// `threads` is clamped to `[1, len]`; with one thread (or `len <= 1`)
/// the map runs inline on the caller with no thread machinery at all, so
/// a serial run is byte-for-byte the plain `for` loop. Work is handed
/// out through a shared atomic cursor: threads grab the next unclaimed
/// index, so long and short items balance without pre-partitioning.
///
/// # Panics
///
/// Re-raises the first observed worker panic on the calling thread.
pub fn par_map_indexed<T, F>(threads: usize, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(len.max(1));
    if threads <= 1 {
        return (0..len).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    let mut shards: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        mine.push((i, f(i)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    // Merge the per-thread shards back into input order.
    let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
    for shard in &mut shards {
        for (i, v) in shard.drain(..) {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, v)| v.unwrap_or_else(|| panic!("index {i} never produced")))
        .collect()
}

/// A task queued on a [`LanePool`]. Lifetime-erased: see `LanePool::run`
/// for the soundness argument.
type PoolTask = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: Vec<PoolTask>,
    /// Tasks queued or currently executing in the active round.
    pending: usize,
    /// First panic payload observed this round; re-raised by `run`.
    panic: Option<Box<dyn Any + Send>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers that tasks arrived (or shutdown was requested).
    work_cv: Condvar,
    /// Signals the `run` caller that `pending` reached zero.
    done_cv: Condvar,
}

impl PoolShared {
    /// Pops and executes queued tasks until the queue is empty, catching
    /// panics (first payload wins) and decrementing `pending` per task.
    fn drain(&self) {
        loop {
            let task = {
                let mut st = self.state.lock().unwrap();
                match st.queue.pop() {
                    Some(t) => t,
                    None => return,
                }
            };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
            let mut st = self.state.lock().unwrap();
            if let Err(payload) = result {
                st.panic.get_or_insert(payload);
            }
            st.pending -= 1;
            if st.pending == 0 {
                self.done_cv.notify_all();
            }
        }
    }
}

/// A persistent scoped worker pool for barrier-style rounds of borrowed
/// tasks.
///
/// [`par_map_indexed`] and [`join`] spawn and join OS threads per call —
/// fine for coarse sweeps, ruinous for a per-epoch barrier loop that
/// fires thousands of small rounds. `LanePool` keeps its workers parked
/// on a condvar between rounds: [`LanePool::run`] hands one closure to
/// each lane, the caller participates in draining the queue, and the
/// call returns only after every task of the round has finished (the
/// barrier). Panics in any task are re-raised on the caller after the
/// round completes, so the pool is never left mid-round.
///
/// With `workers == 0` the pool is a free inline executor: `run`
/// executes every task on the caller, no threads, no locks held across
/// user code — a serial round is byte-for-byte the plain loop.
pub struct LanePool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for LanePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LanePool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl LanePool {
    /// Creates a pool with `workers` parked helper threads. The caller of
    /// [`LanePool::run`] always participates too, so total parallelism per
    /// round is `workers + 1`.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: Vec::new(),
                pending: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    {
                        let mut st = shared.state.lock().unwrap();
                        while st.queue.is_empty() && !st.shutdown {
                            st = shared.work_cv.wait(st).unwrap();
                        }
                        if st.queue.is_empty() && st.shutdown {
                            return;
                        }
                    }
                    shared.drain();
                })
            })
            .collect();
        LanePool {
            shared,
            workers: handles,
        }
    }

    /// Number of parked helper threads (parallelism is this plus the
    /// caller).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs one barrier round: queues every task, wakes the workers,
    /// drains alongside them, and returns once all tasks have completed.
    ///
    /// Tasks may borrow from the caller's stack (`'env`), like
    /// `std::thread::scope`. The lifetime erasure below is sound because
    /// this method does not return until `pending == 0`, i.e. every
    /// erased closure has already been dropped, so no borrow outlives
    /// the call.
    ///
    /// # Panics
    ///
    /// Re-raises the first observed task panic after the round barrier.
    pub fn run<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if tasks.is_empty() {
            return;
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert_eq!(st.pending, 0, "LanePool::run re-entered mid-round");
            st.pending = tasks.len();
            st.queue.extend(tasks.into_iter().map(|t| {
                // SAFETY: `run` blocks until every queued task has
                // executed and been dropped (the `pending == 0` wait
                // below), so nothing borrowed by the closure outlives
                // this stack frame.
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, PoolTask>(t) }
            }));
            self.shared.work_cv.notify_all();
        }
        // The caller is a worker too: it drains the queue until empty,
        // then parks on the done condvar for the stragglers.
        self.shared.drain();
        let mut st = self.shared.state.lock().unwrap();
        while st.pending > 0 {
            st = self.shared.done_cv.wait(st).unwrap();
        }
        if let Some(payload) = st.panic.take() {
            drop(st);
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for LanePool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1, 2, 4, 8] {
            let out = par_map_indexed(threads, 100, |i| {
                // Make late indices finish first so completion order and
                // input order disagree.
                std::thread::sleep(std::time::Duration::from_micros(
                    (100 - i as u64).saturating_mul(10),
                ));
                i * 3
            });
            assert_eq!(
                out,
                (0..100).map(|i| i * 3).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_map_oversubscribed_threads_clamp() {
        assert_eq!(par_map_indexed(64, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn par_map_propagates_panics() {
        let r = std::panic::catch_unwind(|| {
            par_map_indexed(4, 8, |i| {
                if i == 5 {
                    panic!("boom at 5");
                }
                i
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn lane_pool_runs_borrowed_tasks() {
        for workers in [0, 1, 3] {
            let pool = LanePool::new(workers);
            let mut slots = vec![0u64; 8];
            {
                let tasks: Vec<Box<dyn FnOnce() + Send>> = slots
                    .iter_mut()
                    .enumerate()
                    .map(|(i, slot)| {
                        Box::new(move || *slot = (i as u64 + 1) * 10) as Box<dyn FnOnce() + Send>
                    })
                    .collect();
                pool.run(tasks);
            }
            assert_eq!(
                slots,
                (1..=8).map(|i| i * 10).collect::<Vec<u64>>(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn lane_pool_is_reusable_across_rounds() {
        let pool = LanePool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..4)
                .map(|_| {
                    let counter = &counter;
                    Box::new(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            pool.run(tasks);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn lane_pool_propagates_panics_and_survives() {
        let pool = LanePool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..4)
                .map(|i| {
                    Box::new(move || {
                        if i == 2 {
                            panic!("lane boom");
                        }
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            pool.run(tasks);
        }));
        assert!(r.is_err(), "panic must resurface on the caller");
        // The pool must be usable for the next round.
        let ok = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..4)
            .map(|_| {
                let ok = &ok;
                Box::new(move || {
                    ok.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn lane_pool_empty_round_is_a_noop() {
        let pool = LanePool::new(1);
        pool.run(Vec::new());
        assert_eq!(pool.workers(), 1);
    }
}
