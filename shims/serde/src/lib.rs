//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this shim provides the small slice of serde's API the workspace actually
//! uses: the `Serialize` / `Deserialize` traits (including derive macros) on
//! top of a simple JSON-like [`Value`] tree. `serde_json` (also shimmed)
//! renders that tree as real JSON.
//!
//! Semantics intentionally mirror serde's defaults for the shapes used here:
//! structs serialize as objects in field order, newtype structs as their
//! inner value, unit enum variants as strings, and data-carrying variants as
//! externally tagged single-key objects.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

// Let this crate's own tests exercise the derive macros, whose expansion
// refers to `::serde::...`.
#[cfg(test)]
extern crate self as serde;

/// A JSON-like value tree, the intermediate representation of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate so `u64::MAX` survives).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered, mirroring serde_json's struct behaviour.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced by deserialization.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `Self` out of a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Support functions used by the derive expansion.
// ---------------------------------------------------------------------------

/// Looks up a required struct field in an object (derive-internal).
///
/// # Errors
///
/// Returns [`DeError`] when the key is missing.
pub fn __get_field<'a>(v: &'a Value, key: &str, ty: &str) -> Result<&'a Value, DeError> {
    v.get(key)
        .ok_or_else(|| DeError::msg(format!("missing field `{key}` while deserializing {ty}")))
}

/// Reports a shape mismatch (derive-internal).
pub fn __type_error<T>(expected: &str, got: &Value) -> Result<T, DeError> {
    Err(DeError::msg(format!("expected {expected}, got {got:?}")))
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| DeError::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| DeError::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => __type_error("bool", v),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => __type_error("string", v),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => __type_error("single-char string", v),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => __type_error("array", v),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => __type_error("array", v),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic, like a BTreeMap.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => __type_error("object", v),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => __type_error("object", v),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $n; // positional marker
                            $t::from_value(
                                it.next().ok_or_else(|| DeError::msg("tuple too short"))?,
                            )?
                        },)+))
                    }
                    _ => __type_error("array (tuple)", v),
                }
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn object_lookup() {
        let obj = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(obj.get("a"), Some(&Value::Int(1)));
        assert_eq!(obj.get("b"), None);
    }

    #[derive(Debug, PartialEq, serde_derive::Serialize, serde_derive::Deserialize)]
    struct Labeled<T> {
        label: String,
        payload: T,
    }

    #[derive(Debug, PartialEq, serde_derive::Serialize, serde_derive::Deserialize)]
    struct Pair<A, B: Clone> {
        first: A,
        second: B,
        rest: Vec<A>,
    }

    #[test]
    fn generic_struct_round_trips() {
        // Single unbounded type parameter — the `Tree<M: ServerModel>`
        // config shape the fleet layer needs.
        let w = Labeled {
            label: "rack0".to_string(),
            payload: vec![1u32, 2, 3],
        };
        assert_eq!(Labeled::<Vec<u32>>::from_value(&w.to_value()).unwrap(), w);
        // Nested generic payloads resolve through the blanket field path.
        let nested = Labeled {
            label: "dc".to_string(),
            payload: Labeled {
                label: "leaf".to_string(),
                payload: 0.75f64,
            },
        };
        assert_eq!(
            Labeled::<Labeled<f64>>::from_value(&nested.to_value()).unwrap(),
            nested
        );
        // Multiple parameters, declaration bounds skipped by the parser.
        let p = Pair {
            first: 7u64,
            second: "x".to_string(),
            rest: vec![8, 9],
        };
        assert_eq!(Pair::<u64, String>::from_value(&p.to_value()).unwrap(), p);
        // Missing-field errors still name the container.
        let bad = Value::Object(vec![("label".into(), Value::Str("a".into()))]);
        assert!(Labeled::<u32>::from_value(&bad).is_err());
    }

    #[derive(Debug, PartialEq, serde_derive::Serialize, serde_derive::Deserialize)]
    #[serde(tag = "kind", rename_all = "snake_case")]
    enum TaggedAction {
        BudgetStep { fraction: f64 },
        CoresOffline { cores: Vec<usize> },
        Noop,
    }

    #[test]
    fn internally_tagged_enum_serializes_flat() {
        let v = TaggedAction::BudgetStep { fraction: 0.5 }.to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("kind".into(), Value::Str("budget_step".into())),
                ("fraction".into(), Value::Float(0.5)),
            ])
        );
        assert_eq!(
            TaggedAction::Noop.to_value(),
            Value::Object(vec![("kind".into(), Value::Str("noop".into()))])
        );
    }

    #[test]
    fn internally_tagged_enum_round_trips() {
        for a in [
            TaggedAction::BudgetStep { fraction: 0.25 },
            TaggedAction::CoresOffline { cores: vec![0, 3] },
            TaggedAction::Noop,
        ] {
            assert_eq!(TaggedAction::from_value(&a.to_value()).unwrap(), a);
        }
    }

    #[test]
    fn internally_tagged_enum_rejects_bad_shapes() {
        // Unknown tag value.
        let v = Value::Object(vec![("kind".into(), Value::Str("explode".into()))]);
        let err = TaggedAction::from_value(&v).unwrap_err();
        assert!(
            err.0.contains("unknown TaggedAction variant `explode`"),
            "{err}"
        );
        // Missing tag key.
        let v = Value::Object(vec![("fraction".into(), Value::Float(0.5))]);
        assert!(TaggedAction::from_value(&v).is_err());
        // Missing variant field.
        let v = Value::Object(vec![("kind".into(), Value::Str("budget_step".into()))]);
        let err = TaggedAction::from_value(&v).unwrap_err();
        assert!(err.0.contains("missing field `fraction`"), "{err}");
        // Not an object at all.
        assert!(TaggedAction::from_value(&Value::Str("noop".into())).is_err());
    }
}
