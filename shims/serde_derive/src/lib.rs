//! Derive macros for the offline `serde` shim.
//!
//! Parses the derive input with `proc_macro` alone (no `syn`/`quote` — the
//! build environment is offline) and emits impls of the shim's `Serialize` /
//! `Deserialize` traits. Supported shapes are the ones this workspace uses:
//! structs with named fields, tuple structs, unit structs, and enums with
//! unit / tuple / struct variants. Generic containers are supported for
//! plain type parameters (bounds on the declaration are accepted and
//! skipped); every parameter is re-bound to the derived trait in the
//! emitted impl, mirroring real serde's conservative default. Lifetime and
//! const parameters, and `where` clauses, are not supported.
//!
//! `#[serde(...)]` container attributes: `tag = "..."` (internally tagged
//! enums, used by the scenario event format) and `rename_all =
//! "snake_case"` (enum variant names) are honoured; everything else —
//! including all field attributes — is accepted and ignored. The only
//! ignored one appearing in-tree is `#[serde(transparent)]` on newtype
//! structs, whose semantics (serialize as the inner value) are this shim's
//! default for single-field tuple structs anyway, matching real serde.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::fmt::Write as _;

/// Parsed `#[serde(...)]` container attributes.
#[derive(Default)]
struct ContainerAttrs {
    /// `tag = "..."`: internally-tagged enum representation.
    tag: Option<String>,
    /// `rename_all = "snake_case"`: variant-name casing.
    snake_case: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// The parsed derive input.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

impl Shape {
    fn name(&self) -> &str {
        match self {
            Shape::NamedStruct { name, .. }
            | Shape::TupleStruct { name, .. }
            | Shape::UnitStruct { name }
            | Shape::Enum { name, .. } => name,
        }
    }
}

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn ident_str(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Advances past any `#[...]` outer attributes.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while is_punct(toks.get(*i), '#') {
        // `#` then a bracket group; inner attributes (`#![...]`) do not occur
        // in derive input.
        *i += 2;
    }
}

/// Advances past the container's outer attributes, extracting the
/// `#[serde(...)]` options this shim honours (`tag`, `rename_all`).
fn parse_container_attrs(toks: &[TokenTree], i: &mut usize) -> ContainerAttrs {
    let mut out = ContainerAttrs::default();
    while is_punct(toks.get(*i), '#') {
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    collect_serde_options(args, &mut out);
                }
            }
        }
        *i += 2;
    }
    out
}

/// Reads `key = "value"` pairs out of one `serde(...)` argument list.
fn collect_serde_options(args: &Group, out: &mut ContainerAttrs) {
    let toks: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < toks.len() {
        let key = ident_str(&toks[j]);
        if key.is_some() && is_punct(toks.get(j + 1), '=') {
            if let Some(TokenTree::Literal(lit)) = toks.get(j + 2) {
                let value = lit.to_string().trim_matches('"').to_owned();
                match key.as_deref() {
                    Some("tag") => out.tag = Some(value),
                    Some("rename_all") => {
                        assert_eq!(
                            value, "snake_case",
                            "serde shim derive: only rename_all = \"snake_case\" is supported"
                        );
                        out.snake_case = true;
                    }
                    _ => {}
                }
                j += 3;
                continue;
            }
        }
        j += 1;
    }
}

/// Converts a `CamelCase` variant name to `snake_case` (the only
/// `rename_all` casing the shim supports).
fn snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (k, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if k > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Advances past `pub` / `pub(crate)` / `pub(in ...)`.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advances past tokens until a top-level `,` (consumed) or the end,
/// tracking `<...>` nesting so commas inside generic arguments don't split.
fn skip_until_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth: i32 = 0;
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Parses `name: Type, ...` fields from a brace group.
fn parse_named_fields(g: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let Some(tok) = toks.get(i) else { break };
        let name = ident_str(tok)
            .unwrap_or_else(|| panic!("serde shim derive: expected field name, found {tok}"));
        i += 1;
        assert!(
            is_punct(toks.get(i), ':'),
            "serde shim derive: expected `:` after field `{name}`"
        );
        i += 1;
        skip_until_comma(&toks, &mut i);
        out.push(name);
    }
    out
}

/// Counts the fields of a tuple struct/variant from its paren group.
fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        skip_until_comma(&toks, &mut i);
        n += 1;
    }
    n
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let Some(tok) = toks.get(i) else { break };
        let name = ident_str(tok)
            .unwrap_or_else(|| panic!("serde shim derive: expected variant name, found {tok}"));
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g))
            }
            _ => VariantKind::Unit,
        };
        if is_punct(toks.get(i), '=') {
            // Explicit discriminant: skip to the separating comma.
            i += 1;
            skip_until_comma(&toks, &mut i);
        } else if is_punct(toks.get(i), ',') {
            i += 1;
        }
        out.push(Variant { name, kind });
    }
    out
}

/// One parsed type parameter: its ident plus any declaration bounds
/// (rendered back to source text, e.g. `Clone + Send`).
struct TypeParam {
    ident: String,
    bounds: String,
}

/// Parses the `<...>` generic-parameter list after the type name, if any.
/// Returns the type parameters in declaration order. Declaration bounds
/// (`M: ServerModel + Clone`) are kept and re-emitted on the impl header —
/// the type itself requires them — with the derived trait appended to each
/// parameter, mirroring real serde's conservative default. Lifetimes and
/// const parameters are rejected: the impl header this shim emits has no
/// way to forward them.
fn parse_generics(toks: &[TokenTree], i: &mut usize, name: &str) -> Vec<TypeParam> {
    if !is_punct(toks.get(*i), '<') {
        return Vec::new();
    }
    *i += 1;
    let mut params = Vec::new();
    while !is_punct(toks.get(*i), '>') {
        let tok = toks
            .get(*i)
            .unwrap_or_else(|| panic!("serde shim derive: unterminated generics on `{name}`"));
        let ident = ident_str(tok).unwrap_or_else(|| {
            panic!(
                "serde shim derive: `{name}` has generic parameter `{tok}`; \
                 only plain type parameters are supported"
            )
        });
        assert!(
            ident != "const",
            "serde shim derive: const generics on `{name}` are not supported"
        );
        *i += 1;
        // Collect bounds (after a `:`, stopping at a top-level `=` default)
        // up to the separating top-level `,` (consumed) or the closing `>`
        // (left for the loop condition), tracking `<...>` nesting inside
        // bound arguments.
        let mut bounds = String::new();
        let mut in_bounds = false;
        let mut depth: i32 = 0;
        loop {
            match toks.get(*i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' && depth > 0 => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    *i += 1;
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ':' && depth == 0 && !in_bounds => {
                    in_bounds = true;
                    *i += 1;
                    continue;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' && depth == 0 => in_bounds = false,
                Some(_) => {}
                None => panic!("serde shim derive: unterminated generics on `{name}`"),
            }
            if in_bounds {
                let _ = write!(bounds, "{} ", toks[*i]);
            }
            *i += 1;
        }
        params.push(TypeParam { ident, bounds });
    }
    *i += 1; // closing `>`
    params
}

/// `impl` header pieces for a possibly-generic container: the parameter
/// list with every type parameter carrying its declaration bounds plus
/// `trait_path`, and the bare argument list for the self type. Empty
/// strings for non-generic types.
fn generics_header(params: &[TypeParam], trait_path: &str) -> (String, String) {
    if params.is_empty() {
        return (String::new(), String::new());
    }
    let bounded: Vec<String> = params
        .iter()
        .map(|p| {
            if p.bounds.is_empty() {
                format!("{}: {trait_path}", p.ident)
            } else {
                format!("{}: {}+ {trait_path}", p.ident, p.bounds)
            }
        })
        .collect();
    let args: Vec<&str> = params.iter().map(|p| p.ident.as_str()).collect();
    (
        format!("<{}>", bounded.join(", ")),
        format!("<{}>", args.join(", ")),
    )
}

fn parse_shape(input: TokenStream) -> (Shape, ContainerAttrs, Vec<TypeParam>) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = parse_container_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = ident_str(&toks[i]).expect("serde shim derive: expected `struct` or `enum`");
    i += 1;
    let name = ident_str(&toks[i]).expect("serde shim derive: expected type name");
    i += 1;
    let generics = parse_generics(&toks, &mut i, &name);
    assert!(
        !matches!(toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where"),
        "serde shim derive: `where` clause on `{name}` is not supported"
    );
    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g),
                }
            }
            _ => Shape::UnitStruct { name },
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g),
            },
            other => panic!("serde shim derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    if attrs.tag.is_some() {
        let Shape::Enum { name, variants } = &shape else {
            panic!("serde shim derive: `tag` is only supported on enums");
        };
        for v in variants {
            assert!(
                !matches!(v.kind, VariantKind::Tuple(_)),
                "serde shim derive: tuple variant `{name}::{}` cannot be internally tagged",
                v.name
            );
        }
    }
    (shape, attrs, generics)
}

/// The on-the-wire name of a variant under the container's casing rule.
fn wire_name(attrs: &ContainerAttrs, variant: &str) -> String {
    if attrs.snake_case {
        snake_case(variant)
    } else {
        variant.to_owned()
    }
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (shape, attrs, generics) = parse_shape(input);
    let name = shape.name().to_owned();
    let body = match &shape {
        Shape::NamedStruct { fields, .. } => {
            let mut entries = String::new();
            for f in fields {
                let _ = write!(
                    entries,
                    "(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})),"
                );
            }
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        Shape::TupleStruct { arity: 1, .. } => {
            // Newtype structs serialize transparently, as in real serde.
            "::serde::Serialize::to_value(&self.0)".to_owned()
        }
        Shape::TupleStruct { arity, .. } => {
            let mut items = String::new();
            for k in 0..*arity {
                let _ = write!(items, "::serde::Serialize::to_value(&self.{k}),");
            }
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Shape::UnitStruct { .. } => "::serde::Value::Null".to_owned(),
        Shape::Enum { variants, .. } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let wn = wire_name(&attrs, vn);
                if let Some(tag) = &attrs.tag {
                    // Internally tagged: one flat object, tag key first.
                    let tag_entry = format!(
                        "(::std::string::String::from(\"{tag}\"), \
                         ::serde::Value::Str(::std::string::String::from(\"{wn}\"))),"
                    );
                    match &v.kind {
                        VariantKind::Unit => {
                            let _ = write!(
                                arms,
                                "{name}::{vn} => \
                                 ::serde::Value::Object(::std::vec![{tag_entry}]),"
                            );
                        }
                        VariantKind::Named(fields) => {
                            let pat = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            let _ = write!(
                                arms,
                                "{name}::{vn} {{ {pat} }} => ::serde::Value::Object(\
                                 ::std::vec![{tag_entry}{entries}]),"
                            );
                        }
                        VariantKind::Tuple(_) => unreachable!("rejected by parse_shape"),
                    }
                    continue;
                }
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{wn}\")),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{wn}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        );
                    }
                    VariantKind::Tuple(k) => {
                        let binders: Vec<String> = (0..*k).map(|j| format!("__f{j}")).collect();
                        let pat = binders.join(", ");
                        let items: String = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vn}({pat}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{wn}\"), \
                             ::serde::Value::Array(::std::vec![{items}]))]),"
                        );
                    }
                    VariantKind::Named(fields) => {
                        let pat = fields.join(", ");
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vn} {{ {pat} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{wn}\"), \
                             ::serde::Value::Object(::std::vec![{entries}]))]),"
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    let (impl_params, ty_args) = generics_header(&generics, "::serde::Serialize");
    let out = format!(
        "#[automatically_derived]\n\
         impl{impl_params} ::serde::Serialize for {name}{ty_args} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (shape, attrs, generics) = parse_shape(input);
    let name = shape.name().to_owned();
    let body = match &shape {
        Shape::NamedStruct { fields, .. } => {
            let mut inits = String::new();
            for f in fields {
                let _ = write!(
                    inits,
                    "{f}: ::serde::Deserialize::from_value(\
                     ::serde::__get_field(__v, \"{f}\", \"{name}\")?)?,"
                );
            }
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::TupleStruct { arity: 1, .. } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct { arity, .. } => {
            let mut inits = String::new();
            for k in 0..*arity {
                let _ = write!(inits, "::serde::Deserialize::from_value(&__items[{k}])?,");
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {arity} => \
                         ::std::result::Result::Ok({name}({inits})),\n\
                     __other => ::serde::__type_error(\"{arity}-element array for {name}\", __other),\n\
                 }}"
            )
        }
        Shape::UnitStruct { .. } => format!("::std::result::Result::Ok({name})"),
        Shape::Enum { variants, .. } if attrs.tag.is_some() => {
            // Internally tagged: the tag key selects the variant and the
            // remaining keys of the *same* object are its fields.
            let tag = attrs.tag.as_deref().expect("guarded by match arm");
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let wn = wire_name(&attrs, vn);
                match &v.kind {
                    VariantKind::Unit => {
                        let _ =
                            write!(arms, "\"{wn}\" => ::std::result::Result::Ok({name}::{vn}),");
                    }
                    VariantKind::Named(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::__get_field(__v, \"{f}\", \
                                     \"{name}::{vn}\")?)?,"
                                )
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "\"{wn}\" => ::std::result::Result::Ok({name}::{vn} {{ {inits} }}),"
                        );
                    }
                    VariantKind::Tuple(_) => unreachable!("rejected by parse_shape"),
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Object(_) => {{\n\
                         match ::serde::__get_field(__v, \"{tag}\", \"{name}\")? {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {arms}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::msg(\
                                     ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                             }},\n\
                             __other => ::serde::__type_error(\
                                 \"string `{tag}` tag for {name}\", __other),\n\
                         }}\n\
                     }}\n\
                     __other => ::serde::__type_error(\"object for enum {name}\", __other),\n\
                 }}"
            )
        }
        Shape::Enum { variants, .. } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                let wn = wire_name(&attrs, vn);
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{wn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            data_arms,
                            "\"{wn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__payload)?)),"
                        );
                    }
                    VariantKind::Tuple(k) => {
                        let inits: String = (0..*k)
                            .map(|j| format!("::serde::Deserialize::from_value(&__items[{j}])?,"))
                            .collect();
                        let _ = write!(
                            data_arms,
                            "\"{wn}\" => match __payload {{\n\
                                 ::serde::Value::Array(__items) if __items.len() == {k} => \
                                     ::std::result::Result::Ok({name}::{vn}({inits})),\n\
                                 __other => ::serde::__type_error(\
                                     \"{k}-element array for {name}::{vn}\", __other),\n\
                             }},"
                        );
                    }
                    VariantKind::Named(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::__get_field(__payload, \"{f}\", \
                                     \"{name}::{vn}\")?)?,"
                                )
                            })
                            .collect();
                        let _ = write!(
                            data_arms,
                            "\"{wn}\" => ::std::result::Result::Ok({name}::{vn} {{ {inits} }}),"
                        );
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::msg(\
                             ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__key, __payload) = &__entries[0];\n\
                         match __key.as_str() {{\n\
                             {data_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::msg(\
                                 ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::serde::__type_error(\"enum {name}\", __other),\n\
                 }}"
            )
        }
    };
    let (impl_params, ty_args) = generics_header(&generics, "::serde::Deserialize");
    let out = format!(
        "#[automatically_derived]\n\
         impl{impl_params} ::serde::Deserialize for {name}{ty_args} {{\n\
             fn from_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}
