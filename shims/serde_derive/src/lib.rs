//! Derive macros for the offline `serde` shim.
//!
//! Parses the derive input with `proc_macro` alone (no `syn`/`quote` — the
//! build environment is offline) and emits impls of the shim's `Serialize` /
//! `Deserialize` traits. Supported shapes are the ones this workspace uses:
//! structs with named fields, tuple structs, unit structs, and enums with
//! unit / tuple / struct variants. Generic types are not supported.
//!
//! `#[serde(...)]` container and field attributes are accepted and ignored;
//! the only one appearing in-tree is `#[serde(transparent)]` on newtype
//! structs, whose semantics (serialize as the inner value) are this shim's
//! default for single-field tuple structs anyway, matching real serde.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::fmt::Write as _;

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// The parsed derive input.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

impl Shape {
    fn name(&self) -> &str {
        match self {
            Shape::NamedStruct { name, .. }
            | Shape::TupleStruct { name, .. }
            | Shape::UnitStruct { name }
            | Shape::Enum { name, .. } => name,
        }
    }
}

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn ident_str(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Advances past any `#[...]` outer attributes.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while is_punct(toks.get(*i), '#') {
        // `#` then a bracket group; inner attributes (`#![...]`) do not occur
        // in derive input.
        *i += 2;
    }
}

/// Advances past `pub` / `pub(crate)` / `pub(in ...)`.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advances past tokens until a top-level `,` (consumed) or the end,
/// tracking `<...>` nesting so commas inside generic arguments don't split.
fn skip_until_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth: i32 = 0;
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Parses `name: Type, ...` fields from a brace group.
fn parse_named_fields(g: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let Some(tok) = toks.get(i) else { break };
        let name = ident_str(tok)
            .unwrap_or_else(|| panic!("serde shim derive: expected field name, found {tok}"));
        i += 1;
        assert!(
            is_punct(toks.get(i), ':'),
            "serde shim derive: expected `:` after field `{name}`"
        );
        i += 1;
        skip_until_comma(&toks, &mut i);
        out.push(name);
    }
    out
}

/// Counts the fields of a tuple struct/variant from its paren group.
fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        skip_until_comma(&toks, &mut i);
        n += 1;
    }
    n
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let Some(tok) = toks.get(i) else { break };
        let name = ident_str(tok)
            .unwrap_or_else(|| panic!("serde shim derive: expected variant name, found {tok}"));
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g))
            }
            _ => VariantKind::Unit,
        };
        if is_punct(toks.get(i), '=') {
            // Explicit discriminant: skip to the separating comma.
            i += 1;
            skip_until_comma(&toks, &mut i);
        } else if is_punct(toks.get(i), ',') {
            i += 1;
        }
        out.push(Variant { name, kind });
    }
    out
}

fn parse_shape(input: TokenStream) -> Shape {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = ident_str(&toks[i]).expect("serde shim derive: expected `struct` or `enum`");
    i += 1;
    let name = ident_str(&toks[i]).expect("serde shim derive: expected type name");
    i += 1;
    assert!(
        !is_punct(toks.get(i), '<'),
        "serde shim derive: generic type `{name}` is not supported"
    );
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g),
                }
            }
            _ => Shape::UnitStruct { name },
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g),
            },
            other => panic!("serde shim derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let name = shape.name().to_owned();
    let body = match &shape {
        Shape::NamedStruct { fields, .. } => {
            let mut entries = String::new();
            for f in fields {
                let _ = write!(
                    entries,
                    "(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f})),"
                );
            }
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        Shape::TupleStruct { arity: 1, .. } => {
            // Newtype structs serialize transparently, as in real serde.
            "::serde::Serialize::to_value(&self.0)".to_owned()
        }
        Shape::TupleStruct { arity, .. } => {
            let mut items = String::new();
            for k in 0..*arity {
                let _ = write!(items, "::serde::Serialize::to_value(&self.{k}),");
            }
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Shape::UnitStruct { .. } => "::serde::Value::Null".to_owned(),
        Shape::Enum { variants, .. } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        );
                    }
                    VariantKind::Tuple(k) => {
                        let binders: Vec<String> = (0..*k).map(|j| format!("__f{j}")).collect();
                        let pat = binders.join(", ");
                        let items: String = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vn}({pat}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Array(::std::vec![{items}]))]),"
                        );
                    }
                    VariantKind::Named(fields) => {
                        let pat = fields.join(", ");
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vn} {{ {pat} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(::std::vec![{entries}]))]),"
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let name = shape.name().to_owned();
    let body = match &shape {
        Shape::NamedStruct { fields, .. } => {
            let mut inits = String::new();
            for f in fields {
                let _ = write!(
                    inits,
                    "{f}: ::serde::Deserialize::from_value(\
                     ::serde::__get_field(__v, \"{f}\", \"{name}\")?)?,"
                );
            }
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::TupleStruct { arity: 1, .. } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct { arity, .. } => {
            let mut inits = String::new();
            for k in 0..*arity {
                let _ = write!(inits, "::serde::Deserialize::from_value(&__items[{k}])?,");
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {arity} => \
                         ::std::result::Result::Ok({name}({inits})),\n\
                     __other => ::serde::__type_error(\"{arity}-element array for {name}\", __other),\n\
                 }}"
            )
        }
        Shape::UnitStruct { .. } => format!("::std::result::Result::Ok({name})"),
        Shape::Enum { variants, .. } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            data_arms,
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__payload)?)),"
                        );
                    }
                    VariantKind::Tuple(k) => {
                        let inits: String = (0..*k)
                            .map(|j| format!("::serde::Deserialize::from_value(&__items[{j}])?,"))
                            .collect();
                        let _ = write!(
                            data_arms,
                            "\"{vn}\" => match __payload {{\n\
                                 ::serde::Value::Array(__items) if __items.len() == {k} => \
                                     ::std::result::Result::Ok({name}::{vn}({inits})),\n\
                                 __other => ::serde::__type_error(\
                                     \"{k}-element array for {name}::{vn}\", __other),\n\
                             }},"
                        );
                    }
                    VariantKind::Named(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::__get_field(__payload, \"{f}\", \
                                     \"{name}::{vn}\")?)?,"
                                )
                            })
                            .collect();
                        let _ = write!(
                            data_arms,
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {inits} }}),"
                        );
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::DeError::msg(\
                             ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__key, __payload) = &__entries[0];\n\
                         match __key.as_str() {{\n\
                             {data_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::msg(\
                                 ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::serde::__type_error(\"enum {name}\", __other),\n\
                 }}"
            )
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}
