//! Offline stand-in for `serde_json`: renders the serde shim's [`Value`]
//! tree as real JSON and parses JSON text back into it.

use std::fmt;

pub use serde::Value;

/// Error type for serialization and parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Never fails in this shim; kept fallible for API compatibility.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (2-space indent, like
/// serde_json).
///
/// # Errors
///
/// Never fails in this shim; kept fallible for API compatibility.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts a serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] for malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep floats recognizably floats, as serde_json does via its
        // shortest-round-trip formatting.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // serde_json rejects non-finite floats; emitting null is the common
        // lenient fallback and keeps this shim infallible.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let nl = |out: &mut String, d: usize| {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * d));
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
        }
        Value::UInt(u) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{u}"));
        }
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                nl(out, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            nl(out, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                nl(out, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            nl(out, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::msg("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected byte {other:?} at {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            let c = match code {
                                // High surrogate: RFC 8259 encodes astral
                                // code points as a `\uD8xx\uDCxx` pair.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 2) != Some(&b'u')
                                    {
                                        return Err(Error::msg("unpaired surrogate in \\u escape"));
                                    }
                                    let low = self.hex4(self.pos + 3)?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(Error::msg("unpaired surrogate in \\u escape"));
                                    }
                                    self.pos += 6;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::msg("bad \\u code point"))?
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(Error::msg("unpaired surrogate in \\u escape"))
                                }
                                c => char::from_u32(c)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            };
                            out.push(c);
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn hex4(&self, start: usize) -> Result<u32> {
        let hex = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::msg("bad \\u escape"))?,
            16,
        )
        .map_err(|_| Error::msg("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_render() {
        let v = Value::Object(vec![
            ("id".into(), Value::Str("figX".into())),
            (
                "rows".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("x".into(), Value::Float(1.5)),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"id":"figX","rows":[1,2],"x":1.5}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"id\": \"figX\""));
        assert!(pretty.contains("\n  "));
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a": [1, -2, 3.5], "b": "q\"z", "c": null, "d": true}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "q\"z");
        let rendered = to_string(&v).unwrap();
        let v2 = parse_value(&rendered).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
    }

    #[test]
    fn floats_stay_floats() {
        assert_eq!(to_string(&Value::Float(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&Value::Float(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn full_control_range_round_trips() {
        // Every JSON-mandated escape: C0 controls, quote, backslash —
        // rendered, then parsed back to the identical string.
        let mut s = String::new();
        for c in 0u32..0x20 {
            s.push(char::from_u32(c).unwrap());
        }
        s.push('"');
        s.push('\\');
        s.push_str("/plain text");
        let rendered = to_string(&Value::Str(s.clone())).unwrap();
        // The named short escapes are used where JSON defines them…
        assert!(rendered.contains("\\n"));
        assert!(rendered.contains("\\r"));
        assert!(rendered.contains("\\t"));
        assert!(rendered.contains("\\\""));
        assert!(rendered.contains("\\\\"));
        // …and the rest of the C0 range uses \u00XX.
        assert!(rendered.contains("\\u0000"));
        assert!(rendered.contains("\\u0008"));
        assert!(rendered.contains("\\u000c"));
        assert!(rendered.contains("\\u001f"));
        // No raw control byte may survive into the output.
        assert!(rendered.bytes().all(|b| b >= 0x20));
        let back = parse_value(&rendered).unwrap();
        assert_eq!(back, Value::Str(s));
    }

    #[test]
    fn named_escape_aliases_parse() {
        // \b, \f and \u-escapes for the same characters are equivalent.
        let v = parse_value(r#""\b\fA""#).unwrap();
        assert_eq!(v, Value::Str("\u{8}\u{c}\u{8}\u{c}A".to_string()));
    }

    #[test]
    fn surrogate_pairs_parse_and_round_trip() {
        // U+1F600 as a RFC 8259 surrogate pair.
        let v = parse_value(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::Str("\u{1F600}".to_string()));
        // The shim renders astral chars raw (valid JSON); the pair form
        // must still parse back to the same string.
        let rendered = to_string(&v).unwrap();
        assert_eq!(parse_value(&rendered).unwrap(), v);
    }

    #[test]
    fn lone_surrogates_are_rejected() {
        assert!(parse_value(r#""\ud83d""#).is_err());
        assert!(parse_value(r#""\ud83dx""#).is_err());
        assert!(parse_value(r#""\ude00""#).is_err());
        assert!(parse_value(r#""\ud83dA""#).is_err());
    }
}
