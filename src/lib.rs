//! Facade crate re-exporting the FastCap reproduction workspace.
pub use fastcap_core as core;
pub use fastcap_fleet as fleet;
pub use fastcap_policies as policies;
pub use fastcap_scenario as scenario;
pub use fastcap_sim as sim;
pub use fastcap_workloads as workloads;
