//! Cross-validation of the two simulation backends: the analytic
//! (approximate-MVA) server must agree with the discrete-event server on
//! power, throughput ordering and closed-loop capping behaviour.

use fastcap_policies::{CappingPolicy, FastCapPolicy};
use fastcap_sim::{AnalyticServer, RunResult, Server, SimConfig};
use fastcap_workloads::mixes;

fn cfg() -> SimConfig {
    SimConfig::ispass(16)
        .unwrap()
        .with_time_dilation(200.0)
        .with_meter_noise(0.0)
}

fn des_uncapped(mix: &str, epochs: usize) -> RunResult {
    let mut s = Server::for_workload(cfg(), &mixes::by_name(mix).unwrap(), 5).unwrap();
    s.run(epochs, |_| None)
}

fn analytic_uncapped(mix: &str, epochs: usize) -> RunResult {
    let mut s = AnalyticServer::for_workload(cfg(), &mixes::by_name(mix).unwrap(), 5).unwrap();
    s.run(epochs, |_| None)
}

#[test]
fn uncapped_power_agrees_within_fifteen_percent() {
    for mix in ["ILP1", "MID2", "MEM2", "MIX3"] {
        let des = des_uncapped(mix, 8).avg_power(2);
        let ana = analytic_uncapped(mix, 8).avg_power(2);
        let rel = (des.get() - ana.get()).abs() / des.get();
        assert!(
            rel < 0.15,
            "{mix}: DES {des} vs analytic {ana} differ by {:.0}%",
            rel * 100.0
        );
    }
}

#[test]
fn uncapped_throughput_agrees_within_thirty_percent() {
    // The analytic backend is an approximation (open-queue waits, no
    // stochastic burstiness), so allow a generous band — what matters is
    // that both backends put each workload in the same performance regime.
    for mix in ["ILP2", "MID1", "MEM3"] {
        let des: f64 = des_uncapped(mix, 8).throughput(2).iter().sum();
        let ana: f64 = analytic_uncapped(mix, 8).throughput(2).iter().sum();
        let ratio = ana / des;
        assert!(
            (0.7..1.45).contains(&ratio),
            "{mix}: analytic/DES throughput ratio {ratio:.2}"
        );
    }
}

#[test]
fn workload_power_ordering_matches() {
    // Both backends must order the extremes the same way: a compute-bound
    // mix out-draws a heavily stalled memory-bound one at max frequency.
    let (d_ilp, d_mem) = (
        des_uncapped("ILP1", 6).avg_power(2).get(),
        des_uncapped("MEM1", 6).avg_power(2).get(),
    );
    let (a_ilp, a_mem) = (
        analytic_uncapped("ILP1", 6).avg_power(2).get(),
        analytic_uncapped("MEM1", 6).avg_power(2).get(),
    );
    assert!(d_ilp > d_mem, "DES: ILP {d_ilp} vs MEM {d_mem}");
    assert!(a_ilp > a_mem, "analytic: ILP {a_ilp} vs MEM {a_mem}");
}

#[test]
fn closed_loop_capping_agrees() {
    // FastCap must hold the same budget on either substrate.
    let c = cfg();
    let budget = c.controller_config(0.6).unwrap().budget();
    let mix = mixes::by_name("MIX1").unwrap();

    let mut p1 = FastCapPolicy::new(c.controller_config(0.6).unwrap()).unwrap();
    let mut des = Server::for_workload(c.clone(), &mix, 9).unwrap();
    let r_des = des.run(20, |obs| p1.decide(obs).ok());

    let mut p2 = FastCapPolicy::new(c.controller_config(0.6).unwrap()).unwrap();
    let mut ana = AnalyticServer::for_workload(c, &mix, 9).unwrap();
    let r_ana = ana.run(20, |obs| p2.decide(obs).ok());

    for (name, r) in [("DES", &r_des), ("analytic", &r_ana)] {
        let avg = r.avg_power(5);
        assert!(
            avg.get() <= budget.get() * 1.06 && avg.get() >= budget.get() * 0.75,
            "{name}: {avg} vs budget {budget}"
        );
    }
}

#[test]
fn analytic_enables_large_n_closed_loop() {
    // The headline payoff of the analytic backend: a 128-core closed loop
    // in milliseconds.
    let c = SimConfig::ispass(128).unwrap().with_meter_noise(0.0);
    let budget = c.controller_config(0.6).unwrap().budget();
    let mut policy = FastCapPolicy::new(c.controller_config(0.6).unwrap()).unwrap();
    let mix = mixes::by_name("MIX2").unwrap();
    let mut server = AnalyticServer::for_workload(c, &mix, 3).unwrap();
    let run = server.run(16, |obs| policy.decide(obs).ok());
    let avg = run.avg_power(4);
    assert!(
        avg.get() <= budget.get() * 1.06,
        "128-core analytic loop: {avg} vs {budget}"
    );
}
