//! End-to-end closed-loop tests: the FastCap controller driving the
//! discrete-event server, checked against the paper's headline claims
//! (Fig. 3–5): power pinned at the budget, violations corrected within a
//! couple of epochs, and sane degradations.

use fastcap_core::units::Watts;
use fastcap_policies::{CappingPolicy, FastCapPolicy};
use fastcap_sim::{RunResult, Server, SimConfig};
use fastcap_workloads::mixes;

fn capped_run(
    mix: &str,
    n_cores: usize,
    budget: f64,
    epochs: usize,
    dilation: f64,
    seed: u64,
) -> (RunResult, RunResult, Watts) {
    let cfg = SimConfig::ispass(n_cores)
        .unwrap()
        .with_time_dilation(dilation);
    let ctl_cfg = cfg.controller_config(budget).unwrap();
    let budget_w = ctl_cfg.budget();
    let mix = mixes::by_name(mix).unwrap();
    let mut baseline = Server::for_workload(cfg.clone(), &mix, seed).unwrap();
    let base = baseline.run(epochs, |_| None);
    let mut policy = FastCapPolicy::new(ctl_cfg).unwrap();
    let mut server = Server::for_workload(cfg, &mix, seed).unwrap();
    let capped = server.run(epochs, |obs| policy.decide(obs).ok());
    (base, capped, budget_w)
}

#[test]
fn budget_holds_for_every_class_at_60pct() {
    for mix in ["ILP2", "MID1", "MEM2", "MIX1"] {
        let (_, capped, budget) = capped_run(mix, 16, 0.6, 24, 200.0, 7);
        let avg = capped.avg_power(5);
        assert!(
            avg.get() <= budget.get() * 1.06,
            "{mix}: avg {avg} exceeds budget {budget} by >6%"
        );
        // The budget is actually used (FastCap is not over-conservative) —
        // except when the workload cannot draw that much power at all.
        let uncapped_headroom = capped.avg_power(5).get() / budget.get();
        assert!(
            uncapped_headroom > 0.80,
            "{mix}: only {:.0}% of the budget used",
            uncapped_headroom * 100.0
        );
    }
}

#[test]
fn violations_are_corrected_within_two_epochs() {
    // Fig. 5's claim: after the uncapped warm-up epoch, FastCap pulls the
    // power under (or to within a whisker of) the cap within ~2 epochs and
    // never sustains a violation streak.
    let (_, capped, budget) = capped_run("MIX2", 16, 0.6, 30, 200.0, 3);
    let trace: Vec<f64> = capped
        .epochs
        .iter()
        .map(|e| e.total_power.get() / budget.get())
        .collect();
    assert!(trace[0] > 1.05, "warm-up epoch should be over budget");
    let mut streak = 0usize;
    let mut longest = 0usize;
    for &p in &trace[2..] {
        if p > 1.05 {
            streak += 1;
            longest = longest.max(streak);
        } else {
            streak = 0;
        }
    }
    assert!(
        longest <= 2,
        "sustained violation streak of {longest} epochs: {trace:?}"
    );
}

#[test]
fn mem_workloads_do_not_reach_a_loose_cap() {
    // Fig. 5, B = 80%: memory-bound workloads draw less than a loose cap
    // even at maximum frequencies.
    let (base, capped, budget) = capped_run("MEM1", 16, 0.8, 16, 200.0, 5);
    assert!(
        base.avg_power(4).get() < budget.get(),
        "MEM1 uncapped ({}) should sit below the 80% cap ({budget})",
        base.avg_power(4)
    );
    // And capping barely changes anything.
    let d = capped.degradation_vs(&base, 4).unwrap();
    let avg_d = d.iter().sum::<f64>() / d.len() as f64;
    assert!(
        avg_d < 1.10,
        "loose cap should be ~free for MEM1, got {avg_d}"
    );
}

#[test]
fn degradation_is_fair_across_applications() {
    // Fig. 6's fairness claim: worst-app degradation stays close to the
    // average (no outliers).
    let (base, capped, _) = capped_run("MIX4", 16, 0.6, 24, 200.0, 11);
    let rep = capped.fairness_vs(&base, 5).unwrap();
    assert!(rep.average > 1.0, "capping must cost something: {rep:?}");
    assert!(
        rep.worst / rep.average < 1.18,
        "outlier: worst {} vs average {}",
        rep.worst,
        rep.average
    );
    assert!(rep.jain_index > 0.97, "Jain {}", rep.jain_index);
}

#[test]
fn tighter_budgets_degrade_more() {
    let mut prev = f64::INFINITY;
    for budget in [0.5, 0.7, 0.9] {
        let (base, capped, _) = capped_run("MID2", 16, budget, 20, 200.0, 13);
        let d = capped.degradation_vs(&base, 5).unwrap();
        let avg = d.iter().sum::<f64>() / d.len() as f64;
        assert!(
            avg <= prev * 1.03,
            "B={budget}: degradation {avg} worse than looser budget {prev}"
        );
        prev = avg;
    }
}

#[test]
fn emergency_budget_drives_everything_to_the_floor() {
    // A budget below the static floor: FastCap must emit emergency
    // minimum-frequency decisions rather than erroring out.
    let cfg = SimConfig::ispass(16).unwrap().with_time_dilation(300.0);
    let ctl_cfg = cfg.controller_config(0.18).unwrap(); // 21.6 W, infeasible
    let mix = mixes::by_name("ILP1").unwrap();
    let mut policy = FastCapPolicy::new(ctl_cfg).unwrap();
    let mut server = Server::for_workload(cfg, &mix, 1).unwrap();
    let run = server.run(6, |obs| policy.decide(obs).ok());
    let last = run.epochs.last().unwrap();
    assert!(last.emergency);
    assert!(last.core_freq_idx.iter().all(|&i| i == 0));
    assert_eq!(last.mem_freq_idx, 0);
}
