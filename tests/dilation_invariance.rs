//! DESIGN.md §2 claims the simulated queue dynamics are invariant under
//! time dilation: the simulator runs a `1/time_dilation` slice of each
//! epoch, and rescaling that slice must not change what the controller
//! sees in expectation. This test turns the claim into an assertion:
//! sweeping the dilation at a fixed seed, the capped power and
//! degradation metrics may drift only within a small tolerance (shorter
//! slices see fewer arrivals, so estimates get noisier — but they must
//! not shift systematically).

use fastcap_core::units::Watts;
use fastcap_policies::{CappingPolicy, FastCapPolicy};
use fastcap_sim::Server;
use fastcap_sim::SimConfig;
use fastcap_workloads::mixes;

struct DilationMetrics {
    avg_power: Watts,
    avg_degr: f64,
    worst_degr: f64,
}

fn metrics_at(dilation: f64, seed: u64) -> DilationMetrics {
    const EPOCHS: usize = 60;
    const SKIP: usize = 5;
    // Ideal meter: leaves dilation as the only varying input.
    let cfg = SimConfig::ispass(16)
        .unwrap()
        .with_time_dilation(dilation)
        .with_meter_noise(0.0);
    let ctl_cfg = cfg.controller_config(0.6).unwrap();
    let mix = mixes::by_name("MID1").unwrap();

    let mut baseline = Server::for_workload(cfg.clone(), &mix, seed).unwrap();
    let base = baseline.run(EPOCHS, |_| None);

    let mut policy = FastCapPolicy::new(ctl_cfg).unwrap();
    let mut server = Server::for_workload(cfg, &mix, seed).unwrap();
    let capped = server.run(EPOCHS, |obs| policy.decide(obs).ok());

    let d = capped.degradation_vs(&base, SKIP).unwrap();
    DilationMetrics {
        avg_power: capped.avg_power(SKIP),
        avg_degr: d.iter().sum::<f64>() / d.len() as f64,
        worst_degr: d.iter().cloned().fold(f64::MIN, f64::max),
    }
}

#[test]
fn metrics_are_invariant_under_time_dilation() {
    // The reference dilation is the full-mode default (25×); candidates
    // span a further 8× coarsening.
    let reference = metrics_at(25.0, 11);
    for dilation in [50.0, 100.0, 200.0] {
        let m = metrics_at(dilation, 11);
        let power_drift =
            (m.avg_power.get() - reference.avg_power.get()).abs() / reference.avg_power.get();
        let degr_drift = (m.avg_degr - reference.avg_degr).abs() / reference.avg_degr;
        let worst_drift = (m.worst_degr - reference.worst_degr).abs() / reference.worst_degr;
        println!(
            "dilation {dilation}: power {:.3} W (drift {:.4}), avg degr {:.4} (drift {:.4}), \
             worst degr {:.4} (drift {:.4})",
            m.avg_power.get(),
            power_drift,
            m.avg_degr,
            degr_drift,
            m.worst_degr,
            worst_drift
        );
        // Measured drift at seed 11: ≤ 0.7% power, ≤ 0.3% avg, ≤ 2.6%
        // worst; the limits leave ~2× headroom without going vacuous.
        assert!(
            power_drift < 0.02,
            "avg power drifts {power_drift:.4} at dilation {dilation} (limit 2%)"
        );
        assert!(
            degr_drift < 0.02,
            "avg degradation drifts {degr_drift:.4} at dilation {dilation} (limit 2%)"
        );
        assert!(
            worst_drift < 0.06,
            "worst degradation drifts {worst_drift:.4} at dilation {dilation} (limit 6%)"
        );
    }
}
