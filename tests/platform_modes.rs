//! Integration tests for the Sec. IV-B platform variations: out-of-order
//! cores, multiple memory controllers with skewed interleaving, and larger
//! core counts (the Fig. 12/13 configurations).

use fastcap_policies::{CappingPolicy, FastCapPolicy};
use fastcap_sim::{Interleaving, RunResult, Server, SimConfig};
use fastcap_workloads::mixes;

fn capped(cfg: &SimConfig, mix: &str, budget: f64, epochs: usize, seed: u64) -> RunResult {
    let ctl_cfg = cfg.controller_config(budget).unwrap();
    let mut policy = FastCapPolicy::new(ctl_cfg).unwrap();
    let mix = mixes::by_name(mix).unwrap();
    let mut server = Server::for_workload(cfg.clone(), &mix, seed).unwrap();
    server.run(epochs, |obs| policy.decide(obs).ok())
}

fn baseline(cfg: &SimConfig, mix: &str, epochs: usize, seed: u64) -> RunResult {
    let mix = mixes::by_name(mix).unwrap();
    let mut server = Server::for_workload(cfg.clone(), &mix, seed).unwrap();
    server.run(epochs, |_| None)
}

#[test]
fn out_of_order_mode_is_capped_and_fair() {
    let cfg = SimConfig::ispass(16)
        .unwrap()
        .with_time_dilation(200.0)
        .out_of_order();
    let budget = cfg.controller_config(0.6).unwrap().budget();
    let base = baseline(&cfg, "MIX3", 20, 41);
    let run = capped(&cfg, "MIX3", 0.6, 20, 41);
    assert!(
        run.avg_power(5).get() <= budget.get() * 1.08,
        "OoO avg {} vs budget {budget}",
        run.avg_power(5)
    );
    let rep = run.fairness_vs(&base, 5).unwrap();
    assert!(
        rep.worst / rep.average < 1.25,
        "OoO fairness: worst {} avg {}",
        rep.worst,
        rep.average
    );
}

#[test]
fn ooo_memory_bound_workloads_lose_more_than_in_order() {
    // Fig. 13: OoO raises baseline memory-level parallelism, so capping
    // costs MEM workloads more than under in-order execution.
    let inorder = SimConfig::ispass(16).unwrap().with_time_dilation(200.0);
    let ooo = inorder.clone().out_of_order();
    let avg = |r: &RunResult, b: &RunResult| {
        let d = r.degradation_vs(b, 5).unwrap();
        d.iter().sum::<f64>() / d.len() as f64
    };
    let b_io = baseline(&inorder, "MEM1", 20, 43);
    let r_io = capped(&inorder, "MEM1", 0.6, 20, 43);
    let b_oo = baseline(&ooo, "MEM1", 20, 43);
    let r_oo = capped(&ooo, "MEM1", 0.6, 20, 43);
    let (d_io, d_oo) = (avg(&r_io, &b_io), avg(&r_oo, &b_oo));
    assert!(
        d_oo > d_io * 0.95,
        "OoO MEM degradation ({d_oo}) should be at least comparable to in-order ({d_io})"
    );
}

#[test]
fn skewed_multi_controller_is_capped_and_fair() {
    let cfg = SimConfig::ispass(16)
        .unwrap()
        .with_time_dilation(200.0)
        .with_controllers(4, Interleaving::Skewed { decay: 0.45 });
    let budget = cfg.controller_config(0.6).unwrap().budget();
    let base = baseline(&cfg, "MEM3", 20, 47);
    let run = capped(&cfg, "MEM3", 0.6, 20, 47);
    assert!(
        run.avg_power(5).get() <= budget.get() * 1.08,
        "skewed-MC avg {} vs budget {budget}",
        run.avg_power(5)
    );
    let rep = run.fairness_vs(&base, 5).unwrap();
    assert!(
        rep.worst / rep.average < 1.25,
        "skewed-MC fairness: worst {} avg {}",
        rep.worst,
        rep.average
    );
}

#[test]
fn uniform_multi_controller_matches_single_controller_roughly() {
    // Same total banks and bus capacity split four ways should produce
    // broadly similar capped throughput under uniform interleaving.
    let single = SimConfig::ispass(16).unwrap().with_time_dilation(200.0);
    let multi = single.clone().with_controllers(4, Interleaving::Uniform);
    let t = |cfg: &SimConfig| {
        let r = capped(cfg, "MID4", 0.6, 20, 53);
        r.throughput(5).iter().sum::<f64>()
    };
    let (ts, tm) = (t(&single), t(&multi));
    // Four parallel buses actually help; allow a broad band either way.
    assert!(
        tm > ts * 0.7 && tm < ts * 2.5,
        "multi-MC throughput {tm:.3e} wildly off single-MC {ts:.3e}"
    );
}

#[test]
fn thirty_two_and_sixty_four_cores_hold_the_budget() {
    for n in [32usize, 64] {
        let cfg = SimConfig::ispass(n).unwrap().with_time_dilation(300.0);
        let budget = cfg.controller_config(0.6).unwrap().budget();
        let run = capped(&cfg, "MIX1", 0.6, 14, 61);
        assert!(
            run.avg_power(4).get() <= budget.get() * 1.08,
            "{n} cores: avg {} vs budget {budget}",
            run.avg_power(4)
        );
        assert_eq!(run.n_cores, n);
    }
}

#[test]
fn overhead_scales_roughly_linearly_in_cores() {
    // Table I / Sec. IV-B: decide() is O(N log M). Allow generous slack for
    // timer noise: 4x the cores must cost less than 10x the time.
    use fastcap_bench::experiments::overhead::measure_decide_micros;
    let t16 = measure_decide_micros(16, 600).unwrap();
    let t64 = measure_decide_micros(64, 600).unwrap();
    assert!(
        t64 / t16 < 10.0,
        "decide() scaling 16->64 cores: {t16:.1}µs -> {t64:.1}µs"
    );
}
