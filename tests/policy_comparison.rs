//! Cross-policy integration tests: the comparative claims of Fig. 9–11,
//! checked end-to-end on the simulator (small configurations, tolerant
//! thresholds — these are shape checks, not exact numbers).

use fastcap_core::fairness;
use fastcap_policies::{
    CappingPolicy, CpuOnlyPolicy, EqlFreqPolicy, EqlPwrPolicy, FastCapPolicy, MaxBipsPolicy,
};
use fastcap_sim::{RunResult, Server, SimConfig};
use fastcap_workloads::mixes;

fn run_policy<P: CappingPolicy>(
    mut policy: P,
    cfg: &SimConfig,
    mix: &str,
    epochs: usize,
    seed: u64,
) -> RunResult {
    let mix = mixes::by_name(mix).unwrap();
    let mut server = Server::for_workload(cfg.clone(), &mix, seed).unwrap();
    server.run(epochs, |obs| policy.decide(obs).ok())
}

fn baseline(cfg: &SimConfig, mix: &str, epochs: usize, seed: u64) -> RunResult {
    let mix = mixes::by_name(mix).unwrap();
    let mut server = Server::for_workload(cfg.clone(), &mix, seed).unwrap();
    server.run(epochs, |_| None)
}

fn avg(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[test]
fn memory_dvfs_beats_cpu_only_for_cpu_bound_work() {
    // Fig. 9: pinning the memory at maximum frequency wastes budget that
    // ILP workloads would rather spend on cores.
    let cfg = SimConfig::ispass(16).unwrap().with_time_dilation(200.0);
    let ctl = |b| cfg.controller_config(b).unwrap();
    let epochs = 24;
    let base = baseline(&cfg, "ILP1", epochs, 2);
    let fc = run_policy(
        FastCapPolicy::new(ctl(0.6)).unwrap(),
        &cfg,
        "ILP1",
        epochs,
        2,
    );
    let co = run_policy(
        CpuOnlyPolicy::new(ctl(0.6)).unwrap(),
        &cfg,
        "ILP1",
        epochs,
        2,
    );
    let d_fc = avg(&fc.degradation_vs(&base, 5).unwrap());
    let d_co = avg(&co.degradation_vs(&base, 5).unwrap());
    assert!(
        d_fc < d_co * 1.01,
        "FastCap ({d_fc}) should beat CPU-only ({d_co}) on ILP"
    );
}

#[test]
fn cpu_only_matches_fastcap_on_memory_bound_work() {
    // Fig. 9: for MEM workloads the memory already runs at maximum under
    // FastCap, so CPU-only performs almost the same.
    let cfg = SimConfig::ispass(16).unwrap().with_time_dilation(200.0);
    let ctl = |b| cfg.controller_config(b).unwrap();
    let epochs = 20;
    let base = baseline(&cfg, "MEM1", epochs, 4);
    let fc = run_policy(
        FastCapPolicy::new(ctl(0.6)).unwrap(),
        &cfg,
        "MEM1",
        epochs,
        4,
    );
    let co = run_policy(
        CpuOnlyPolicy::new(ctl(0.6)).unwrap(),
        &cfg,
        "MEM1",
        epochs,
        4,
    );
    let d_fc = avg(&fc.degradation_vs(&base, 5).unwrap());
    let d_co = avg(&co.degradation_vs(&base, 5).unwrap());
    assert!(
        (d_fc - d_co).abs() / d_fc < 0.08,
        "MEM1: FastCap {d_fc} vs CPU-only {d_co} should be close"
    );
}

#[test]
fn eql_pwr_produces_worse_outliers_on_mixed_work() {
    // Fig. 9: equal power shares starve power-hungry apps in mixes.
    let cfg = SimConfig::ispass(16).unwrap().with_time_dilation(200.0);
    let ctl = |b| cfg.controller_config(b).unwrap();
    let epochs = 24;
    let mut worst_fc: f64 = 0.0;
    let mut worst_ep: f64 = 0.0;
    for (i, mix) in ["MIX1", "MIX4"].iter().enumerate() {
        let seed = 21 + i as u64;
        let base = baseline(&cfg, mix, epochs, seed);
        let fc = run_policy(
            FastCapPolicy::new(ctl(0.6)).unwrap(),
            &cfg,
            mix,
            epochs,
            seed,
        );
        let ep = run_policy(
            EqlPwrPolicy::new(ctl(0.6)).unwrap(),
            &cfg,
            mix,
            epochs,
            seed,
        );
        let dfc = fc.degradation_vs(&base, 5).unwrap();
        let dep = ep.degradation_vs(&base, 5).unwrap();
        worst_fc = worst_fc.max(dfc.iter().cloned().fold(f64::MIN, f64::max));
        worst_ep = worst_ep.max(dep.iter().cloned().fold(f64::MIN, f64::max));
    }
    assert!(
        worst_ep > worst_fc,
        "Eql-Pwr worst ({worst_ep}) should exceed FastCap worst ({worst_fc})"
    );
}

#[test]
fn eql_freq_is_conservative_on_mixes() {
    // Fig. 10's mechanism at 16 cores: the global-frequency lock leaves
    // performance on the table relative to FastCap.
    let cfg = SimConfig::ispass(16).unwrap().with_time_dilation(200.0);
    let ctl = |b| cfg.controller_config(b).unwrap();
    let epochs = 24;
    let base = baseline(&cfg, "MIX2", epochs, 8);
    let fc = run_policy(
        FastCapPolicy::new(ctl(0.6)).unwrap(),
        &cfg,
        "MIX2",
        epochs,
        8,
    );
    let ef = run_policy(
        EqlFreqPolicy::new(ctl(0.6)).unwrap(),
        &cfg,
        "MIX2",
        epochs,
        8,
    );
    let d_fc = avg(&fc.degradation_vs(&base, 5).unwrap());
    let d_ef = avg(&ef.degradation_vs(&base, 5).unwrap());
    assert!(
        d_fc <= d_ef * 1.05,
        "FastCap ({d_fc}) should not lose to Eql-Freq ({d_ef})"
    );
}

#[test]
fn maxbips_is_less_fair_than_fastcap() {
    // Fig. 11 on 4 cores: MaxBIPS creates outliers; FastCap does not.
    let cfg = SimConfig::ispass(4).unwrap().with_time_dilation(200.0);
    let ctl = |b: f64| cfg.controller_config(b).unwrap();
    let epochs = 24;
    let mut jain_fc = Vec::new();
    let mut jain_mb = Vec::new();
    for (i, mix) in ["MIX1", "MIX3"].iter().enumerate() {
        let seed = 31 + i as u64;
        let base = baseline(&cfg, mix, epochs, seed);
        let fc = run_policy(
            FastCapPolicy::new(ctl(0.6)).unwrap(),
            &cfg,
            mix,
            epochs,
            seed,
        );
        let mb = run_policy(
            MaxBipsPolicy::new(ctl(0.6)).unwrap(),
            &cfg,
            mix,
            epochs,
            seed,
        );
        jain_fc.push(
            fairness::report(&fc.degradation_vs(&base, 5).unwrap())
                .unwrap()
                .jain_index,
        );
        jain_mb.push(
            fairness::report(&mb.degradation_vs(&base, 5).unwrap())
                .unwrap()
                .jain_index,
        );
    }
    assert!(
        avg(&jain_fc) >= avg(&jain_mb),
        "FastCap Jain {jain_fc:?} should be >= MaxBIPS {jain_mb:?}"
    );
}

#[test]
fn all_policies_respect_the_cap_on_average() {
    // "All policies are capable of controlling the power consumption
    // around the budget" — Sec. IV-B.
    let cfg = SimConfig::ispass(16).unwrap().with_time_dilation(200.0);
    let budget = cfg.controller_config(0.6).unwrap().budget();
    let epochs = 24;
    let policies: Vec<(&str, Box<dyn CappingPolicy>)> = vec![
        (
            "FastCap",
            Box::new(FastCapPolicy::new(cfg.controller_config(0.6).unwrap()).unwrap()),
        ),
        (
            "CPU-only",
            Box::new(CpuOnlyPolicy::new(cfg.controller_config(0.6).unwrap()).unwrap()),
        ),
        (
            "Eql-Pwr",
            Box::new(EqlPwrPolicy::new(cfg.controller_config(0.6).unwrap()).unwrap()),
        ),
        (
            "Eql-Freq",
            Box::new(EqlFreqPolicy::new(cfg.controller_config(0.6).unwrap()).unwrap()),
        ),
    ];
    for (name, mut policy) in policies {
        let mix = mixes::by_name("MID3").unwrap();
        let mut server = Server::for_workload(cfg.clone(), &mix, 17).unwrap();
        let run = server.run(epochs, |obs| policy.decide(obs).ok());
        let avg_p = run.avg_power(5);
        assert!(
            avg_p.get() <= budget.get() * 1.08,
            "{name}: {avg_p} vs budget {budget}"
        );
    }
}
